"""Future-work extensions the paper sketches in Section VI, implemented.

* **Compute-aware scheduling** — "we will extend the network-aware scheduler
  with compute-aware scheduler to take the availability of compute nodes
  into account".  :class:`ComputeAwareScheduler` consumes the periodic load
  reports edge servers emit and adds an expected compute-wait term to the
  delay score (or discounts bandwidth by server busyness).

* **Heterogeneous servers** — "tasks may have certain hardware (e.g., GPU)
  or software (e.g., Keras) requirements".
  :class:`HeterogeneityAwareScheduler` registers per-server capability sets
  and filters candidates against the requirements carried in extended
  queries (``metric = (base_metric, requirements)``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.scheduler import (
    METRIC_BANDWIDTH,
    METRIC_DELAY,
    NetworkAwareScheduler,
)
from repro.errors import SchedulingError
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.host import Host
from repro.simnet.packet import Packet

__all__ = ["ComputeAwareScheduler", "HeterogeneityAwareScheduler", "PORT_LOAD_REPORT"]

# Must match repro.edge.server.PORT_LOAD_REPORT; redeclared here to keep the
# core package independent of the edge layer.
PORT_LOAD_REPORT = 5003

# A load report older than this is treated as "server idle" rather than
# trusted — a crashed reporter should not pin a stale high load forever.
LOAD_STALENESS = 5.0


class ComputeAwareScheduler(NetworkAwareScheduler):
    """Network + compute-aware ranking.

    Delay metric: ``score = network_delay + load × mean_exec_time``, i.e.
    the estimated wait for the server to drain its outstanding tasks.
    Bandwidth metric: ``score = available_bw / (1 + load)`` — a busy server
    is worth proportionally less even over an uncongested path.
    """

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        *,
        mean_exec_time: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(host, server_addrs, **kwargs)
        if mean_exec_time < 0:
            raise SchedulingError("mean_exec_time must be >= 0")
        self.mean_exec_time = mean_exec_time
        # addr -> (running, queued, updated_at)
        self._loads: Dict[int, Tuple[int, int, float]] = {}
        self.load_reports_received = 0
        host.bind(PROTO_UDP, PORT_LOAD_REPORT, self._on_load_report)

    def _on_load_report(self, packet: Packet) -> None:
        msg = packet.message
        if not (isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "load_report"):
            return
        _tag, addr, running, queued = msg
        self._loads[addr] = (int(running), int(queued), self.host.sim.now)
        self.load_reports_received += 1

    def server_load(self, addr: int) -> int:
        entry = self._loads.get(addr)
        if entry is None:
            return 0
        running, queued, updated_at = entry
        if self.host.sim.now - updated_at > LOAD_STALENESS:
            return 0
        return running + queued

    def rank(self, requester_addr: int, metric: str) -> List[Tuple[int, float]]:
        base = super().rank(requester_addr, metric)
        if metric == METRIC_DELAY:
            scored = [
                (addr, value + self.server_load(addr) * self.mean_exec_time)
                for addr, value in base
            ]
            scored.sort(key=lambda item: (item[1], item[0]))
        elif metric == METRIC_BANDWIDTH:
            scored = [
                (addr, value / (1.0 + self.server_load(addr)))
                for addr, value in base
            ]
            scored.sort(key=lambda item: (-item[1], item[0]))
        else:  # pragma: no cover - guarded by the base class
            scored = base
        return scored


class HeterogeneityAwareScheduler(ComputeAwareScheduler):
    """Adds capability matching on top of compute-aware ranking.

    Queries may carry requirements: ``metric = (base_metric,
    frozenset_of_requirements)``.  Servers lacking any required capability
    are excluded from the ranking entirely (a wrong-hardware server is not a
    worse choice, it is not a choice)."""

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        *,
        capabilities: Optional[Dict[int, Set[str]]] = None,
        **kwargs,
    ) -> None:
        super().__init__(host, server_addrs, **kwargs)
        self.capabilities: Dict[int, Set[str]] = {
            addr: set(caps) for addr, caps in (capabilities or {}).items()
        }

    def register_capabilities(self, addr: int, caps: Iterable[str]) -> None:
        self.capabilities[addr] = set(caps)

    def eligible(self, addr: int, requirements: FrozenSet[str]) -> bool:
        if not requirements:
            return True
        return set(requirements).issubset(self.capabilities.get(addr, set()))

    def rank(self, requester_addr: int, metric) -> List[Tuple[int, float]]:
        if isinstance(metric, tuple):
            base_metric, requirements = metric
            requirements = frozenset(requirements)
        else:
            base_metric, requirements = metric, frozenset()
        ranked = super().rank(requester_addr, base_metric)
        return [
            (addr, value) for addr, value in ranked if self.eligible(addr, requirements)
        ]
