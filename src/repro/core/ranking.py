"""Edge-server ranking — Algorithm 1 and its bandwidth-based twin.

Both functions return the *full* candidate list with the estimated metric,
matching the paper's first scheduler mode (sorted list; edge devices take the
head) while also enabling the second mode (devices apply their own policy to
the returned values).

Candidates absent from the inferred topology — or with no known directed
path — are ranked last with an infinite/zero metric rather than dropped:
a scheduler that silently hides servers it has not yet heard about would
starve them forever at startup.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.estimators import BandwidthEstimator, DelayEstimator
from repro.telemetry.records import TelemetryNodeId

__all__ = ["rank_by_delay", "rank_by_bandwidth", "RankedServer"]

RankedServer = Tuple[TelemetryNodeId, float]


def rank_by_delay(
    estimator: DelayEstimator,
    origin: TelemetryNodeId,
    candidates: Optional[Sequence[TelemetryNodeId]] = None,
) -> List[RankedServer]:
    """Algorithm 1: edge nodes sorted by estimated one-way delay from
    ``origin`` (ascending; ties broken by node id for determinism)."""
    store = estimator.store
    if candidates is None:
        candidates = store.topology.reachable_hosts(origin)
    ranked: List[RankedServer] = []
    for node in candidates:
        if node == origin:
            continue
        try:
            delay = estimator.delay_between(origin, node)
        except SchedulingError:
            delay = math.inf
        ranked.append((node, delay))
    ranked.sort(key=lambda item: (item[1], item[0]))
    return ranked


def rank_by_bandwidth(
    estimator: BandwidthEstimator,
    origin: TelemetryNodeId,
    candidates: Optional[Sequence[TelemetryNodeId]] = None,
) -> List[RankedServer]:
    """Section III-D: edge nodes sorted by estimated bottleneck available
    bandwidth from ``origin`` (descending; ties broken by node id)."""
    store = estimator.store
    if candidates is None:
        candidates = store.topology.reachable_hosts(origin)
    ranked: List[RankedServer] = []
    for node in candidates:
        if node == origin:
            continue
        try:
            bw = estimator.throughput_between(origin, node)
        except SchedulingError:
            bw = 0.0
        ranked.append((node, bw))
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked
