"""Edge-server ranking — Algorithm 1 and its bandwidth-based twin.

Both functions return the *full* candidate list with the estimated metric,
matching the paper's first scheduler mode (sorted list; edge devices take the
head) while also enabling the second mode (devices apply their own policy to
the returned values).

Candidates absent from the inferred topology — or with no known directed
path — are ranked last with an infinite/zero metric rather than dropped:
a scheduler that silently hides servers it has not yet heard about would
starve them forever at startup.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.estimators import BandwidthEstimator, DelayEstimator
from repro.telemetry.records import TelemetryNodeId

__all__ = [
    "rank_by_delay",
    "rank_by_bandwidth",
    "explain_delay",
    "explain_bandwidth",
    "RankedServer",
]

RankedServer = Tuple[TelemetryNodeId, float]


def rank_by_delay(
    estimator: DelayEstimator,
    origin: TelemetryNodeId,
    candidates: Optional[Sequence[TelemetryNodeId]] = None,
) -> List[RankedServer]:
    """Algorithm 1: edge nodes sorted by estimated one-way delay from
    ``origin`` (ascending; ties broken by node id for determinism)."""
    store = estimator.store
    if candidates is None:
        candidates = store.topology.reachable_hosts(origin)
    ranked: List[RankedServer] = []
    for node in candidates:
        if node == origin:
            continue
        try:
            delay = estimator.delay_between(origin, node)
        except SchedulingError:
            delay = math.inf
        ranked.append((node, delay))
    ranked.sort(key=lambda item: (item[1], item[0]))
    return ranked


def rank_by_bandwidth(
    estimator: BandwidthEstimator,
    origin: TelemetryNodeId,
    candidates: Optional[Sequence[TelemetryNodeId]] = None,
) -> List[RankedServer]:
    """Section III-D: edge nodes sorted by estimated bottleneck available
    bandwidth from ``origin`` (descending; ties broken by node id)."""
    store = estimator.store
    if candidates is None:
        candidates = store.topology.reachable_hosts(origin)
    ranked: List[RankedServer] = []
    for node in candidates:
        if node == origin:
            continue
        try:
            bw = estimator.throughput_between(origin, node)
        except SchedulingError:
            bw = 0.0
        ranked.append((node, bw))
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked


# -- decision explanations (audit trail) ------------------------------------
#
# These mirror the estimators' arithmetic term by term but return the full
# breakdown instead of one scalar.  They are deliberately separate from the
# rank_* hot paths: ranking runs on every scheduler query, explanation only
# when a decision audit is attached.


def _node_label(node: TelemetryNodeId) -> str:
    return f"{node[0]}:{node[1]}"


def explain_delay(
    estimator: DelayEstimator, origin: TelemetryNodeId, node: TelemetryNodeId
) -> Dict[str, Any]:
    """Algorithm 1's cost for one candidate, decomposed per hop.

    The returned ``value`` equals :meth:`DelayEstimator.path_delay` over the
    same path; ``hops`` lists each directed hop's measured link delay, the
    Q(h) reading, and the ``k * Q(h)`` term actually charged (zero below the
    noise floor or at non-switch hops).
    """
    store = estimator.store
    try:
        path = store.topology.path(origin, node)
    except SchedulingError:
        return {"value": math.inf, "path": [], "hops": []}
    hops: List[Dict[str, Any]] = []
    total = 0.0
    for u, v in zip(path, path[1:]):
        link_delay = store.link_delay(u, v, default=estimator.default_link_delay)
        qdepth = store.max_qdepth(u, v) if u[0] == "sw" else 0
        queue_term = (
            estimator.k * qdepth
            if u[0] == "sw" and qdepth >= estimator.qdepth_floor
            else 0.0
        )
        total += link_delay + queue_term
        hops.append(
            {
                "u": _node_label(u),
                "v": _node_label(v),
                "link_delay": link_delay,
                "qdepth": qdepth,
                "queue_term": queue_term,
            }
        )
    return {"value": total, "path": [_node_label(n) for n in path], "hops": hops}


def explain_bandwidth(
    estimator: BandwidthEstimator, origin: TelemetryNodeId, node: TelemetryNodeId
) -> Dict[str, Any]:
    """Section III-D's bottleneck bandwidth for one candidate, per hop:
    each link's Q(h) reading, the utilization the calibration curve maps it
    to, and the resulting available bandwidth; ``value`` is the minimum."""
    store = estimator.store
    try:
        path = store.topology.path(origin, node)
    except SchedulingError:
        return {"value": 0.0, "path": [], "hops": []}
    hops: List[Dict[str, Any]] = []
    value: Optional[float] = None
    for u, v in zip(path, path[1:]):
        qdepth = store.max_qdepth(u, v)
        utilization = estimator.curve.utilization(qdepth)
        available = estimator.link_capacity_bps * (1.0 - utilization)
        if value is None or available < value:
            value = available
        hops.append(
            {
                "u": _node_label(u),
                "v": _node_label(v),
                "qdepth": qdepth,
                "utilization": utilization,
                "available_bps": available,
            }
        )
    return {
        "value": value if value is not None else 0.0,
        "path": [_node_label(n) for n in path],
        "hops": hops,
    }
