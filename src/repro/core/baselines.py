"""Baseline scheduling policies from Section IV: *Nearest* and *Random*.

Both speak the same query protocol as the network-aware scheduler so the
edge-device code is identical across policies.

*Nearest* ranks by static hop distance, "calculated ahead of time" per the
paper — it receives the ground-truth topology at construction and never
looks at telemetry.  *Random* shuffles the candidate list per query to
spread load blindly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.core.scheduler import SchedulerService
from repro.simnet.host import Host
from repro.simnet.topology import Network

__all__ = ["NearestScheduler", "RandomScheduler"]


class NearestScheduler(SchedulerService):
    """Rank by precomputed switch-hop distance (ties: node name order)."""

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        network: Network,
        **kwargs,
    ) -> None:
        super().__init__(host, server_addrs, **kwargs)
        self._hops: Dict[Tuple[int, int], int] = {}
        # Precompute pairwise switch-hop counts between all hosts once.
        host_names = list(network.hosts)
        for a in host_names:
            for b in host_names:
                if a == b:
                    continue
                path = network.shortest_path(a, b)
                addr_a = network.address_of(a)
                addr_b = network.address_of(b)
                self._hops[(addr_a, addr_b)] = len(path) - 2  # exclude endpoints

    def hop_distance(self, src_addr: int, dst_addr: int) -> int:
        try:
            return self._hops[(src_addr, dst_addr)]
        except KeyError:
            raise SchedulingError(
                f"no precomputed distance between {src_addr} and {dst_addr}"
            ) from None

    def rank(self, requester_addr: int, metric: str) -> List[Tuple[int, float]]:
        ranked = [
            (addr, float(self.hop_distance(requester_addr, addr)))
            for addr in self.candidates_for(requester_addr)
        ]
        ranked.sort(key=lambda item: (item[1], item[0]))
        return ranked


class RandomScheduler(SchedulerService):
    """Uniformly random ranking — the load-balancing strawman."""

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        rng: np.random.Generator,
        **kwargs,
    ) -> None:
        super().__init__(host, server_addrs, **kwargs)
        self._rng = rng

    def rank(self, requester_addr: int, metric: str) -> List[Tuple[int, float]]:
        candidates = self.candidates_for(requester_addr)
        order = self._rng.permutation(len(candidates))
        return [(candidates[i], float(pos)) for pos, i in enumerate(order)]
