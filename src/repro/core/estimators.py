"""Delay and bandwidth estimation from INT telemetry (Sections III-C/III-D).

*Delay* (Algorithm 1's cost):  ``Delay(e_n, e_m) = Σ delay(l_i) + Σ k·Q(h_i)``
where ``delay(l_i)`` is the measured link latency and ``Q(h_i)`` the maximum
queue occupancy of hop *i* in the last probing interval.  ``k`` converts
packets of queue into seconds of wait; the paper uses k = 20 ms and leaves
auto-tuning as future work (implemented here as
:meth:`DelayEstimator.calibrated_k`).

*Bandwidth*: Fig. 3's empirical queue-depth <-> utilization relationship is
inverted to estimate per-link utilization from the collected max queue
depth, available bandwidth = capacity × (1 − utilization), and path
throughput = the bottleneck minimum (Section III-D).
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.telemetry_store import TelemetryStore
from repro.telemetry.records import TelemetryNodeId

__all__ = ["DelayEstimator", "BandwidthEstimator", "QdepthUtilizationCurve", "DEFAULT_K"]

DEFAULT_K = 0.020  # seconds of queue wait per packet of max queue depth (paper: 20 ms)


class DelayEstimator:
    """End-to-end one-way delay predictor over the inferred topology."""

    def __init__(
        self,
        store: TelemetryStore,
        *,
        k: float = DEFAULT_K,
        default_link_delay: float = 0.010,
        qdepth_floor: int = 3,
    ) -> None:
        if k < 0:
            raise ValueError(f"conversion factor k must be >= 0, got {k}")
        if qdepth_floor < 0:
            raise ValueError(f"qdepth_floor must be >= 0, got {qdepth_floor}")
        self.store = store
        self.k = k
        self.default_link_delay = default_link_delay
        # Noise floor: Fig. 3 shows max queue depths below ~5 packets even on
        # links under 50 % utilization, and the paper attributes its
        # negative-gain tail to exactly this — "probing packets can detect
        # small queue build up in network devices even when network
        # congestion is negligible".  Readings below the floor are treated
        # as no congestion so a one-packet blip does not out-weigh a 2-hop
        # (20 ms) detour.
        self.qdepth_floor = qdepth_floor

    def path_delay(
        self, path: Sequence[TelemetryNodeId], *, allow_stale: bool = False
    ) -> float:
        """Algorithm 1's inner loops: total link delay + k × total queue
        occupancy along a directed path.  ``allow_stale`` ranks from
        last-known link latencies past the staleness horizon (degraded
        mode); queue terms still decay — an old congestion reading is
        evidence of nothing."""
        total_link = 0.0
        total_hop = 0.0
        for u, v in zip(path, path[1:]):
            total_link += self.store.link_delay(
                u, v, default=self.default_link_delay, allow_stale=allow_stale
            )
            if u[0] == "sw":
                qdepth = self.store.max_qdepth(u, v)
                if qdepth >= self.qdepth_floor:
                    total_hop += self.k * qdepth
        return total_link + total_hop

    def delay_between(
        self, src: TelemetryNodeId, dst: TelemetryNodeId, *, allow_stale: bool = False
    ) -> float:
        """Delay over the path the inferred topology predicts data will take."""
        path = self.store.topology.path(src, dst)
        return self.path_delay(path, allow_stale=allow_stale)

    @staticmethod
    def calibrated_k(
        samples: Iterable[Tuple[int, float]], baseline_delay: float
    ) -> float:
        """Least-squares fit of k from (max_qdepth, measured_one_way_delay)
        calibration pairs — the auto-tuning the paper defers to future work.

        Fits ``delay ≈ baseline_delay + k·q`` through the origin-shifted
        samples; returns :data:`DEFAULT_K` when the data carries no signal.
        """
        num = 0.0
        den = 0.0
        for q, delay in samples:
            excess = delay - baseline_delay
            num += q * excess
            den += q * q
        if den <= 0:
            return DEFAULT_K
        return max(0.0, num / den)


class QdepthUtilizationCurve:
    """Monotone piecewise-linear map: probing-interval max queue depth ->
    estimated egress utilization in [0, 1].

    The default knots follow the shape of the paper's Fig. 3 (max queue
    below ~5 packets up to 50 % utilization, sharp growth beyond): they can
    be replaced with measured pairs from the calibration experiment via
    :meth:`from_calibration`.
    """

    DEFAULT_KNOTS: List[Tuple[float, float]] = [
        (0.0, 0.00),
        (1.0, 0.15),
        (2.0, 0.30),
        (5.0, 0.50),
        (10.0, 0.70),
        (20.0, 0.85),
        (30.0, 0.95),
        (40.0, 1.00),
    ]

    def __init__(self, knots: Optional[Sequence[Tuple[float, float]]] = None) -> None:
        pts = sorted(knots) if knots is not None else list(self.DEFAULT_KNOTS)
        if len(pts) < 2:
            raise ValueError("need at least two calibration knots")
        qs = [q for q, _ in pts]
        us = [u for _, u in pts]
        if any(b < a for a, b in zip(us, us[1:])):
            raise ValueError("utilization knots must be non-decreasing in queue depth")
        if any(not 0.0 <= u <= 1.0 for u in us):
            raise ValueError("utilization values must lie in [0, 1]")
        self._qs = qs
        self._us = us

    @classmethod
    def from_calibration(
        cls, pairs: Sequence[Tuple[float, float]]
    ) -> "QdepthUtilizationCurve":
        """Build from measured (utilization, max_qdepth) calibration pairs
        (the output of the Fig. 3 experiment), inverting the axes and
        enforcing monotonicity by isotonic cummax."""
        if len(pairs) < 2:
            raise ValueError("need at least two calibration pairs")
        by_util = sorted(pairs)
        knots: List[Tuple[float, float]] = []
        max_q = 0.0
        for util, q in by_util:
            max_q = max(max_q, q)  # enforce monotone queue growth
            knots.append((max_q, min(1.0, max(0.0, util))))
        # Deduplicate queue-depth keys, keeping the largest utilization.
        dedup: dict = {}
        for q, u in knots:
            dedup[q] = max(dedup.get(q, 0.0), u)
        return cls(sorted(dedup.items()))

    @property
    def knots(self) -> List[Tuple[float, float]]:
        """The (max_qdepth, utilization) knots, in queue-depth order — the
        curve's full state, usable to serialize and reconstruct it."""
        return list(zip(self._qs, self._us))

    def utilization(self, max_qdepth: float) -> float:
        """Interpolated utilization estimate; clamps outside the knot range."""
        qs, us = self._qs, self._us
        if max_qdepth <= qs[0]:
            return us[0]
        if max_qdepth >= qs[-1]:
            return us[-1]
        i = bisect.bisect_right(qs, max_qdepth)
        q0, q1 = qs[i - 1], qs[i]
        u0, u1 = us[i - 1], us[i]
        frac = (max_qdepth - q0) / (q1 - q0)
        return u0 + frac * (u1 - u0)


class BandwidthEstimator:
    """Bottleneck available-bandwidth predictor (Section III-D)."""

    def __init__(
        self,
        store: TelemetryStore,
        *,
        link_capacity_bps: float,
        curve: Optional[QdepthUtilizationCurve] = None,
    ) -> None:
        if link_capacity_bps <= 0:
            raise ValueError("link capacity must be positive")
        self.store = store
        self.link_capacity_bps = link_capacity_bps
        self.curve = curve if curve is not None else QdepthUtilizationCurve()

    def link_available_bw(self, u: TelemetryNodeId, v: TelemetryNodeId) -> float:
        """Available bandwidth of the directed link u->v in bits/s."""
        q = self.store.max_qdepth(u, v)
        utilization = self.curve.utilization(q)
        return self.link_capacity_bps * (1.0 - utilization)

    def path_throughput(self, path: Sequence[TelemetryNodeId]) -> float:
        """``throughput = min(b_1 ... b_k)`` over the path's links.  Host
        uplinks (first hop) are included: they share the same capacity."""
        if len(path) < 2:
            raise SchedulingError("throughput needs a path with at least one link")
        return min(self.link_available_bw(u, v) for u, v in zip(path, path[1:]))

    def throughput_between(self, src: TelemetryNodeId, dst: TelemetryNodeId) -> float:
        path = self.store.topology.path(src, dst)
        return self.path_throughput(path)
