"""Topology inference from INT record ordering (Section III-B).

"The scheduler dynamically builds the network topology using telemetry data
reported via probe packets.  Specifically, it learns which network devices
are connected to each other by checking the order of INT data in probe
packets."

The inferred topology is a *directed* graph over
:data:`~repro.telemetry.records.TelemetryNodeId` values: an edge (u, v)
means a probe was observed flowing u -> v, and the telemetry attached to the
edge (queue depth of u's egress toward v, latency of the u->v link) is
specific to that direction.

Path selection on the inferred graph uses minimum hop count with
lexicographic tie-breaking over node ids.  The simulated control plane
breaks routing ties lexicographically over node *names*, and the standard
topologies name switches in id order (``s01`` .. ``s12``), so the
scheduler's idea of "the path data will take" agrees with the installed
routes — the working assumption the paper makes implicitly.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.errors import SchedulingError
from repro.telemetry.records import TelemetryNodeId

__all__ = ["InferredTopology"]


class InferredTopology:
    """Incrementally learned directed network map."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()

    # -- learning ----------------------------------------------------------

    def observe_path(self, nodes: Sequence[TelemetryNodeId]) -> None:
        """Record that a probe traversed ``nodes`` in order."""
        for node in nodes:
            if node not in self._g:
                self._g.add_node(node)
        for u, v in zip(nodes, nodes[1:]):
            if not self._g.has_edge(u, v):
                self._g.add_edge(u, v)

    # -- queries ------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        return self._g

    def known_nodes(self) -> Set[TelemetryNodeId]:
        return set(self._g.nodes)

    def known_hosts(self) -> Set[TelemetryNodeId]:
        return {n for n in self._g.nodes if n[0] == "host"}

    def known_switches(self) -> Set[TelemetryNodeId]:
        return {n for n in self._g.nodes if n[0] == "sw"}

    def has_node(self, node: TelemetryNodeId) -> bool:
        return node in self._g

    def has_edge(self, u: TelemetryNodeId, v: TelemetryNodeId) -> bool:
        return self._g.has_edge(u, v)

    def path(self, src: TelemetryNodeId, dst: TelemetryNodeId) -> List[TelemetryNodeId]:
        """Min-hop directed path with lexicographic tie-breaking, never
        transiting a host (hosts are endpoints only).

        Raises :class:`SchedulingError` when either endpoint is unknown or
        unreachable — the caller decides how to rank unreachable servers.
        """
        if src not in self._g:
            raise SchedulingError(f"node {src} not yet in inferred topology")
        if dst not in self._g:
            raise SchedulingError(f"node {dst} not yet in inferred topology")
        if src == dst:
            return [src]
        best: Dict[TelemetryNodeId, Tuple[int, tuple]] = {}
        heap: List[Tuple[Tuple[int, tuple], TelemetryNodeId]] = [((0, (src,)), src)]
        while heap:
            (hops, path), u = heapq.heappop(heap)
            if u in best:
                continue
            best[u] = (hops, path)
            if u == dst:
                return list(path)
            for v in sorted(self._g.successors(u)):
                if v in best:
                    continue
                if v[0] == "host" and v != dst:
                    continue  # hosts never forward
                heapq.heappush(heap, ((hops + 1, path + (v,)), v))
        raise SchedulingError(f"no inferred path from {src} to {dst}")

    def reachable_hosts(self, src: TelemetryNodeId) -> List[TelemetryNodeId]:
        """Edge nodes reachable from ``src`` — Algorithm 1's ``E(G, e_n)``."""
        out = []
        for host in sorted(self.known_hosts()):
            if host == src:
                continue
            try:
                self.path(src, host)
            except SchedulingError:
                continue
            out.append(host)
        return out

    def edge_count(self) -> int:
        return self._g.number_of_edges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InferredTopology hosts={len(self.known_hosts())} "
            f"switches={len(self.known_switches())} edges={self.edge_count()}>"
        )
