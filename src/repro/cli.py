"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harnesses:

* ``calibrate`` — the Fig. 3 utilization sweep;
* ``compare``   — a Figs. 5/6/7-style policy comparison;
* ``sweep``     — the Fig. 9 probing-interval sweep;
* ``reproduce`` — everything, in paper order (Fig. 3, 5, 6, 7, 8, 9);
* ``faults``    — list/show/run fault-injection scenarios (robustness);
* ``obs-report`` — summarize an observability export (``--obs-out`` file);
* ``telemetry-report`` — grade the telemetry plane from a ``--telquality``
  export: INT coverage vs prediction, freshness, error-vs-staleness;
* ``whatif-report`` — counterfactual replay of a ``--whatif`` export:
  per-decision regret, alternative-policy comparison, regret attribution;
* ``trace-report`` — summarize a causal span export (``--trace-out`` file);
* ``dashboard`` — render an ``--obs-out`` export as one self-contained
  HTML page (inline SVG sparklines / heatmap / alert timeline);
* ``bench-runner`` — time the Fig. 5 grid serial vs parallel vs cached
  (appends a record to the bench-history ledger, ``BENCH_history.jsonl``);
* ``bench-compare`` — diff two bench reports and fail on regression, or
  gate one report against the ledger's rolling baseline (``--history``);
* ``perf-report`` — render the ledger as trend tables, sparklines, and
  top-mover phases; optionally export a flamegraph SVG / collapsed stacks;
* ``cache``     — inspect, checksum-verify, or clear the on-disk run cache;
* ``resume``    — continue an interrupted sweep from its ``--journal`` file.

Every experiment command executes its grid on :class:`repro.runner.Runner`:
``--jobs N`` fans runs out over supervised worker processes (results are
byte-identical to serial), ``--cache`` reuses ``.runcache/`` results from
previous invocations, and ``--cache-dir`` relocates the cache.
``--trace-out PATH`` captures causal span traces (task / probe /
scheduler-decision lifecycles) as JSONL, ``--sample-interval S`` enables
periodic state sampling (per-link utilization, queue depth, server load,
telemetry staleness, decision error) plus health-rule alerts in the obs
export, ``--telquality`` adds the telemetry-quality observatory record
(read with ``telemetry-report``), ``--whatif`` adds the counterfactual
decision observatory record (read with ``whatif-report``), and
``--profile`` prints the engine's per-event-type hot-path profile after
the grid completes.

Resilience: ``--run-timeout`` bounds each run's wall clock (hung workers
become structured failures), ``--retries`` re-runs crashed/timed-out cells
on fresh workers with backoff, ``--journal PATH`` checkpoints per-run
completion so ``--resume`` (or the ``resume`` command) restarts an
interrupted sweep re-running only what's missing, and Ctrl-C exits with a
summary after persisting everything already computed.

All output is plain text tables (`repro.experiments.report`); ``--out``
additionally writes the report to a file.  ``--obs-out PATH`` (``compare``
and ``reproduce``) captures the observability layer — metrics, structured
events, and the scheduler decision audit — as JSONL.

``--faults PLAN`` (``compare`` and ``reproduce``) injects a fault scenario —
a built-in name (see ``repro faults``) or a JSON plan file — into every run;
``--no-degradation`` additionally disables retry/failover and telemetry
quarantine, showing what the faults cost an unprotected system.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.edge.task import SizeClass
from repro.errors import ReproError
from repro.experiments.calibration import run_calibration_sweep
from repro.experiments.comparison import (
    FIG5_CONFIG,
    FIG6_CONFIG,
    FIG7_CONFIG,
    run_comparison,
)
from repro.experiments.ecdf import fraction_above, paired_gains
from repro.experiments.harness import (
    FULL_SCALE,
    POLICY_AWARE,
    POLICY_NEAREST,
    POLICY_RANDOM,
    QUICK_SCALE,
    SMOKE_SCALE,
    ExperimentConfig,
)
from repro.experiments.probing_sweep import DEFAULT_INTERVALS, run_probing_sweep
from repro.experiments.report import (
    render_calibration,
    render_comparison,
    render_ecdf_points,
    render_probing_sweep,
)

SCALES = {"smoke": SMOKE_SCALE, "quick": QUICK_SCALE, "full": FULL_SCALE}

# Mirrors repro.runner.bench.DEFAULT_HISTORY_PATH / DEFAULT_HISTORY_WINDOW
# and repro.runner.supervisor.DEFAULT_RETRIES; duplicated here so building
# the parser never imports the runner stack.
_DEFAULT_HISTORY = "BENCH_history.jsonl"
_DEFAULT_WINDOW = 5
_DEFAULT_RETRIES = 1
FIGURES = {"fig5": (FIG5_CONFIG, "completion"), "fig6": (FIG6_CONFIG, "completion"),
           "fig7": (FIG7_CONFIG, "transfer")}
_CLASSES = {c.label: c for c in SizeClass}


class _Reporter:
    def __init__(self, out_path: Optional[str]) -> None:
        self.out_path = out_path
        self.lines: List[str] = []

    def emit(self, text: str = "") -> None:
        print(text)
        sys.stdout.flush()
        self.lines.append(text)

    def close(self) -> None:
        if self.out_path:
            with open(self.out_path, "w") as fh:
                fh.write("\n".join(self.lines) + "\n")
            print(f"report written to {self.out_path}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    parser.add_argument(
        "--obs-out", type=str, default=None, metavar="PATH",
        help="capture the observability layer (metrics + events + decision "
             "audit) to a JSONL file; see the obs-report command",
    )


def _add_runner(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N grid cells in parallel worker processes "
             "(results are byte-identical to --jobs 1; default: 1)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="reuse cached run results and cache new ones "
             "(default: --no-cache)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="run-cache directory (default: .runcache; implies --cache)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="capture causal span traces (task/probe/scheduler-decision "
             "lifecycles) to a JSONL file; see the trace-report command",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the simulation engine (per-event-type counts, handler "
             "wall-time, and phase-level hot-path attribution) and print "
             "the merged summary",
    )
    parser.add_argument(
        "--mem-profile", action="store_true",
        help="add memory attribution (gc counters, allocated-block delta, "
             "tracemalloc top sites) to the profile; implies --profile",
    )
    parser.add_argument(
        "--sample-interval", type=float, default=None, metavar="S",
        help="sample network/server/scheduler state every S sim-seconds and "
             "evaluate health rules; the time series and alerts ride on the "
             "--obs-out export (see the dashboard command)",
    )
    parser.add_argument(
        "--telquality", action="store_true",
        help="collect the telemetry-quality observatory (INT coverage "
             "ledger, freshness digests, decision-error attribution); the "
             "kind:\"telquality\" record rides on the --obs-out export "
             "(see the telemetry-report command)",
    )
    parser.add_argument(
        "--whatif", action="store_true",
        help="collect the counterfactual decision observatory (per-decision "
             "hindsight regret, alternative-policy replay, staleness "
             "attribution); the kind:\"whatif\" record rides on the "
             "--obs-out export (see the whatif-report command)",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock timeout; a hung run is killed and recorded "
             "as a structured failure instead of wedging the sweep "
             "(default: auto-scaled from each run's expected duration when "
             "supervised; 0 disables)",
    )
    parser.add_argument(
        "--retries", type=int, default=_DEFAULT_RETRIES, metavar="N",
        help="re-run a crashed/timed-out/raising run up to N extra times on "
             "a fresh worker, with exponential backoff "
             f"(default: {_DEFAULT_RETRIES})",
    )
    parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="checkpoint per-run completion state to this JSONL journal so "
             "an interrupted sweep can be resumed (see --resume and the "
             "resume command)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue the sweep recorded in --journal: already-completed "
             "runs are served from the cache, only missing/failed ones "
             "re-run (implies --cache)",
    )


def _runner_from_args(args: argparse.Namespace):
    """Build the Runner the command's grids execute on."""
    from repro.errors import ExperimentError
    from repro.runner import DEFAULT_CACHE_DIR, ResultCache, RunJournal, Runner

    journal_path = getattr(args, "journal", None)
    resume = getattr(args, "resume", False)
    if resume and not journal_path:
        raise ExperimentError("--resume requires --journal PATH")
    journal = None
    if journal_path:
        journal = RunJournal(journal_path)
        if journal.exists() and not resume:
            raise ExperimentError(
                f"journal {journal_path} already exists; pass --resume to "
                f"continue that sweep, or remove the file to start fresh"
            )
    cache = None
    cache_dir = getattr(args, "cache_dir", None)
    # --resume implies --cache: completed cells are served from the cache,
    # and without it every "done" journal entry would re-run anyway.
    if getattr(args, "cache", False) or cache_dir or resume:
        cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR)
    progress = None
    if getattr(args, "jobs", 1) > 1 or cache is not None or journal is not None:
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731
    runner_obs = None
    if getattr(args, "obs_out", None):
        # A hub for the runner's own resilience events (failures, retries,
        # cache corruption); _finish_runner appends them to --obs-out.
        from repro.obs import Observability

        runner_obs = Observability()
    return Runner(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        progress=progress,
        obs=runner_obs,
        trace=bool(getattr(args, "trace_out", None)),
        profile=bool(getattr(args, "profile", False)),
        mem_profile=bool(getattr(args, "mem_profile", False)),
        sample_interval=getattr(args, "sample_interval", None),
        telquality=bool(getattr(args, "telquality", False)),
        whatif=bool(getattr(args, "whatif", False)),
        run_timeout=getattr(args, "run_timeout", None),
        retries=getattr(args, "retries", 0),
        journal=journal,
    )


# Runner resilience event kinds that _finish_runner forwards to --obs-out.
_RESILIENCE_EVENTS = {"runner_run_failed", "runner_run_retry", "cache_corrupt"}


def _finish_runner(reporter: "_Reporter", args: argparse.Namespace, runner) -> None:
    """Flush a runner's accumulated instrumentation: write the --trace-out
    span export and print the merged --profile summary.  With both
    --profile and --obs-out, the merged summary also rides on the obs
    export as one ``kind: "profile"`` record so obs-report and dashboard
    can show it."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs.export import write_jsonl

        total = write_jsonl(runner.trace_records, trace_out)
        reporter.emit(
            f"traces: {total} span records written to {trace_out} "
            f"(summarize with: repro trace-report {trace_out})"
        )
    obs_out = getattr(args, "obs_out", None)
    if obs_out and runner.obs is not None and os.path.exists(obs_out):
        # Forward the runner's own resilience events (failures, retries,
        # cache corruption) so obs-report can surface them.  Appended only
        # when present: a clean sweep's export is byte-stable against the
        # pre-supervision format.
        resilience = [
            record
            for record in runner.obs.events.snapshot()
            if record.get("event") in _RESILIENCE_EVENTS
        ]
        if resilience:
            from repro.obs.export import write_jsonl

            write_jsonl(resilience, obs_out, append=True)
            reporter.emit(
                f"observability: {len(resilience)} runner resilience "
                f"record(s) appended to {obs_out}"
            )
    if getattr(args, "profile", False) or getattr(args, "mem_profile", False):
        from repro.simnet.engine import render_profile

        summary = runner.profile_summary()
        if summary is not None:
            reporter.emit(render_profile(summary))
            obs_out = getattr(args, "obs_out", None)
            # Append only when the command actually wrote an obs export
            # (commands that ignore --obs-out warned about it already).
            if obs_out and os.path.exists(obs_out):
                from repro.obs.export import write_jsonl

                write_jsonl(
                    [{"kind": "profile", "profile": summary}],
                    obs_out,
                    append=True,
                )
                reporter.emit(f"profile: summary appended to {obs_out}")


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", type=str, default=None, metavar="PLAN",
        help="inject a fault scenario into every run: a built-in name "
             "(see the 'faults' command) or a JSON plan file",
    )
    parser.add_argument(
        "--no-degradation", action="store_true",
        help="with --faults: disable retry/failover and telemetry "
             "quarantine (the unprotected-system ablation)",
    )


def _apply_faults(config: ExperimentConfig, args: argparse.Namespace) -> ExperimentConfig:
    """Fold --faults / --no-degradation into an experiment config."""
    spec = getattr(args, "faults", None)
    if not spec:
        return config
    from repro.experiments.fault_scenarios import resolve_plan

    return replace(
        config,
        fault_plan=resolve_plan(spec),
        degradation=not getattr(args, "no_degradation", False),
    )


def _obs_labels(obs_out: Optional[str], **context):
    """Per-run observability label builder for commands honoring --obs-out.

    Returns run-label dicts (not hubs): the hub itself is created inside the
    worker process executing the run, and its records come back on the
    result payload."""
    if not obs_out:
        return None

    def labels(config):
        run = dict(context)
        run.update(
            policy=config.policy,
            size_class=config.size_class.label,
            seed=config.seed,
        )
        return run

    return labels


def _write_obs(reporter: "_Reporter", obs_out: Optional[str], records) -> None:
    """Write collected observability records to one JSONL file."""
    if not obs_out:
        return
    from repro.obs.export import write_jsonl

    total = write_jsonl(list(records), obs_out)
    reporter.emit(f"observability: {total} records written to {obs_out}")


def _warn_obs_unsupported(reporter: _Reporter, args: argparse.Namespace) -> None:
    if getattr(args, "obs_out", None):
        reporter.emit(
            "note: --obs-out is currently captured by the 'compare' and "
            "'reproduce' commands only; ignoring it here"
        )


def cmd_calibrate(args: argparse.Namespace) -> int:
    reporter = _Reporter(args.out)
    _warn_obs_unsupported(reporter, args)
    runner = _runner_from_args(args)
    points = run_calibration_sweep(
        tuple(args.levels), duration=args.duration, seed=args.seed,
        runner=runner,
    )
    reporter.emit("Fig. 3 — max queue depth & RTT vs utilization")
    reporter.emit(render_calibration(points))
    _finish_runner(reporter, args, runner)
    reporter.close()
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    reporter = _Reporter(args.out)
    base, measure = FIGURES[args.figure]
    config = replace(base, scale=SCALES[args.scale], seed=args.seed)
    config = _apply_faults(config, args)
    classes = tuple(_CLASSES[c] for c in args.classes)
    runner = _runner_from_args(args)
    comparison = run_comparison(
        config,
        size_classes=classes,
        policies=(POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM),
        obs_labels=_obs_labels(args.obs_out, figure=args.figure),
        runner=runner,
    )
    reporter.emit(f"{args.figure} — policy comparison ({measure} time)")
    reporter.emit(render_comparison(comparison, measure=measure))
    _write_obs(reporter, args.obs_out, comparison.obs_records)
    _finish_runner(reporter, args, runner)
    reporter.close()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    reporter = _Reporter(args.out)
    _warn_obs_unsupported(reporter, args)
    runner = _runner_from_args(args)
    sweeps = [
        run_probing_sweep(
            name, intervals=tuple(args.intervals), seed=args.seed, runner=runner
        )
        for name in args.scenarios
    ]
    reporter.emit("Fig. 9 — probing interval vs mean transfer time")
    reporter.emit(render_probing_sweep(sweeps))
    _finish_runner(reporter, args, runner)
    reporter.close()
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import sweep_k, sweep_probing_parameter

    reporter = _Reporter(args.out)
    _warn_obs_unsupported(reporter, args)
    base = replace(
        ExperimentConfig(workload="serverless", metric="delay",
                         size_class=_CLASSES[args.size_class]),
        scale=SCALES[args.scale], seed=args.seed,
    )
    runner = _runner_from_args(args)
    if args.parameter == "k":
        result = sweep_k(values=tuple(args.values), base_config=base, runner=runner)
    else:
        result = sweep_probing_parameter(
            args.parameter, tuple(args.values), base_config=base, runner=runner
        )
    reporter.emit(f"sensitivity of gain-vs-nearest to {args.parameter}")
    for value, gain in result.series():
        reporter.emit(f"  {args.parameter} = {value:g}: gain {gain:+.1f}%")
    reporter.emit(f"best value: {result.best_value():g}")
    _finish_runner(reporter, args, runner)
    reporter.close()
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    reporter = _Reporter(args.out)
    scale = SCALES[args.scale]
    classes = tuple(SizeClass) if args.scale != "smoke" else (SizeClass.VS, SizeClass.S)
    calib_duration = {"smoke": 20.0, "quick": 30.0, "full": 300.0}[args.scale]
    intervals = (0.1, 30.0) if args.scale == "smoke" else DEFAULT_INTERVALS
    started = time.time()
    runner = _runner_from_args(args)

    reporter.emit(f"# Reproduction report (scale={args.scale}, seed={args.seed})")
    reporter.emit("\n## Fig. 3 — max queue depth & RTT vs utilization")
    points = run_calibration_sweep(
        (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        duration=calib_duration, seed=args.seed, runner=runner,
    )
    reporter.emit(render_calibration(points))

    comparisons = {}
    for name, (base, measure) in FIGURES.items():
        reporter.emit(f"\n## {name} ({base.workload}, {base.metric} ranking, {measure} time)")
        comparison = run_comparison(
            _apply_faults(replace(base, scale=scale, seed=args.seed), args),
            size_classes=classes,
            policies=(POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM),
            obs_labels=_obs_labels(args.obs_out, figure=name),
            runner=runner,
        )
        comparisons[name] = comparison
        reporter.emit(render_comparison(comparison, measure=measure))
    _write_obs(
        reporter, args.obs_out,
        [r for c in comparisons.values() for r in c.obs_records],
    )

    reporter.emit("\n## fig8 (ECDF of per-task completion gain vs nearest)")
    sc = SizeClass.S if SizeClass.S in classes else classes[0]
    gains = paired_gains(
        comparisons["fig7"].result(sc, POLICY_AWARE),
        comparisons["fig7"].result(sc, POLICY_NEAREST),
    )
    reporter.emit(render_ecdf_points(gains))
    reporter.emit(
        f"zero-or-negative gain: {100*(1-fraction_above(gains, 0.0)):.0f}% of tasks"
    )

    reporter.emit("\n## fig9 (probing interval sweep)")
    sweeps = [
        run_probing_sweep(name, intervals=intervals, seed=args.seed, runner=runner)
        for name in ("traffic1", "traffic2")
    ]
    reporter.emit(render_probing_sweep(sweeps))
    _finish_runner(reporter, args, runner)
    reporter.emit(f"\nwall-clock: {time.time() - started:.0f}s")
    reporter.close()
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import BUILTIN_SCENARIOS, builtin_plan
    from repro.experiments.fault_scenarios import (
        compare_degradation,
        render_fault_comparison,
        resolve_plan,
    )

    reporter = _Reporter(args.out)
    if args.show:
        reporter.emit(resolve_plan(args.show).to_json())
        reporter.close()
        return 0
    if args.run:
        plan = resolve_plan(args.run)
        config = ExperimentConfig(scale=SCALES[args.scale], seed=args.seed)
        runner = _runner_from_args(args)
        rows = compare_degradation(plan, base_config=config, runner=runner)
        reporter.emit(render_fault_comparison(plan, rows))
        _finish_runner(reporter, args, runner)
        reporter.close()
        # CI contract: a scenario where a *degraded* policy completes zero
        # tasks means graceful degradation is broken — fail loudly.
        broken = [r for r in rows if r.degradation and r.tasks_completed == 0]
        if broken:
            print(
                "error: zero tasks completed with degradation on for: "
                + ", ".join(r.policy for r in broken),
                file=sys.stderr,
            )
            return 1
        return 0
    reporter.emit("built-in fault scenarios (run with: repro faults --run NAME):")
    for name in sorted(BUILTIN_SCENARIOS):
        reporter.emit(f"  {name:<15} {builtin_plan(name).description}")
    reporter.close()
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.runner import (
        DEFAULT_CACHE_DIR,
        ResultCache,
        RunJournal,
        Runner,
        canonical_json,
    )

    journal = RunJournal(args.journal)
    state = journal.load(
        on_warning=lambda msg: print(f"warning: {msg}", file=sys.stderr)
    )
    print(f"journal {args.journal}: {state.summary()}")
    if not state.order:
        print("error: journal records no runs; nothing to resume",
              file=sys.stderr)
        return 2
    specs = [state.specs[spec_hash] for spec_hash in state.order]
    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    runner = Runner(
        jobs=args.jobs,
        cache=cache,
        progress=lambda line: print(line, file=sys.stderr),
        run_timeout=args.run_timeout,
        retries=args.retries,
        journal=journal,
        on_failure="keep",
    )
    results = runner.run(specs)
    failures = [r for r in results if not r.ok]
    print(
        f"resume: {runner.stats.cache_hits} from cache, "
        f"{runner.stats.executed} executed, {len(failures)} failed"
    )
    if args.payloads_out:
        with open(args.payloads_out, "w", encoding="utf-8") as fh:
            for result in results:
                if result.ok:
                    fh.write(
                        canonical_json(
                            {"spec_hash": result.spec_hash,
                             "payload": result.payload}
                        ) + "\n"
                    )
        print(
            f"payloads: {sum(1 for r in results if r.ok)} record(s) "
            f"written to {args.payloads_out} (journal order)"
        )
    if failures:
        print("still failing after retries:", file=sys.stderr)
        for result in failures:
            failure = result.failure or {}
            print(
                f"  {result.spec.label()}: {failure.get('kind', '?')}/"
                f"{failure.get('error_type', '?')} after "
                f"{failure.get('attempts', '?')} attempt(s)",
                file=sys.stderr,
            )
        return 1
    return 0


def cmd_bench_runner(args: argparse.Namespace) -> int:
    import json

    from repro.runner import DEFAULT_CACHE_DIR
    from repro.runner.bench import append_history, run_bench

    cpus = os.cpu_count() or 1
    if args.jobs > cpus:
        print(
            f"note: --jobs {args.jobs} exceeds this host's {cpus} CPU(s); "
            f"the parallel timing will be annotated parallel_valid=false "
            f"and excluded from comparisons (use --jobs {cpus} for a "
            f"meaningful speedup number)",
            file=sys.stderr,
        )
    report = run_bench(
        scale=args.scale,
        jobs=args.jobs,
        seed=args.seed,
        cache_root=args.cache_dir or DEFAULT_CACHE_DIR,
        progress=lambda line: print(line, file=sys.stderr),
        profile=args.profile,
        mem_profile=args.mem_profile,
        run_timeout=args.run_timeout,
        retries=args.retries,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.bench_out:
        with open(args.bench_out, "w") as fh:
            fh.write(text + "\n")
        print(f"benchmark written to {args.bench_out}", file=sys.stderr)
    if args.history:
        append_history(report, args.history, git_timeout=args.run_timeout)
        print(f"history: record appended to {args.history}", file=sys.stderr)
    _write_profile_exports(
        report.get("profile"),
        flamegraph_out=args.flamegraph_out,
        collapsed_out=args.collapsed_out,
    )
    if not report["byte_identical"]:
        print(
            "error: parallel/cached payloads diverge from serial for: "
            + ", ".join(report["diverging_cells"]),
            file=sys.stderr,
        )
        return 1
    return 0


def _write_profile_exports(
    profile,
    *,
    flamegraph_out: Optional[str],
    collapsed_out: Optional[str],
) -> None:
    """Write the flamegraph SVG / collapsed-stack exports of a profile
    summary, when requested and available."""
    if profile is None:
        if flamegraph_out or collapsed_out:
            print(
                "note: no profile in the report; skipping "
                "--flamegraph-out/--collapsed-out",
                file=sys.stderr,
            )
        return
    from repro.obs.perf import collapsed_stacks, flamegraph_svg

    if flamegraph_out:
        with open(flamegraph_out, "w") as fh:
            fh.write(flamegraph_svg(profile))
        print(f"flamegraph written to {flamegraph_out}", file=sys.stderr)
    if collapsed_out:
        with open(collapsed_out, "w") as fh:
            fh.write(collapsed_stacks(profile))
        print(f"collapsed stacks written to {collapsed_out}", file=sys.stderr)


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached run(s) from {cache.root}")
        return 0
    if args.verify:
        report = cache.verify()
        print(
            f"run cache {cache.root}: {report['checked']} entries checked, "
            f"{report['ok']} ok, {len(report['evicted'])} corrupt (evicted), "
            f"{len(report['unverified'])} without checksum"
        )
        for spec_hash, reason in report["evicted"]:
            print(f"  evicted {spec_hash[:16]}: {reason}")
        return 1 if report["evicted"] else 0
    entries = cache.entries()
    print(f"run cache {cache.root}: {len(entries)} entries, "
          f"{cache.size_bytes()} bytes")
    for spec_hash in entries:
        print(f"  {spec_hash}")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import read_jsonl, render_obs_report

    try:
        records = read_jsonl(args.path)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not JSONL: {exc}", file=sys.stderr)
        return 2
    reporter = _Reporter(args.out)
    reporter.emit(f"observability report — {args.path}")
    reporter.emit(render_obs_report(records))
    reporter.close()
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import read_jsonl
    from repro.obs.telquality import render_telemetry_report

    try:
        records = read_jsonl(args.path)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not JSONL: {exc}", file=sys.stderr)
        return 2
    reporter = _Reporter(args.out)
    reporter.emit(f"telemetry-quality report — {args.path}")
    reporter.emit(render_telemetry_report(records))
    reporter.close()
    return 0


def cmd_whatif_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import read_jsonl
    from repro.obs.whatif import render_whatif_report

    try:
        records = read_jsonl(args.path)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not JSONL: {exc}", file=sys.stderr)
        return 2
    reporter = _Reporter(args.out)
    reporter.emit(f"what-if replay report — {args.path}")
    reporter.emit(render_whatif_report(records))
    reporter.close()
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import read_jsonl
    from repro.obs.tracing import render_trace_report, write_chrome_trace

    try:
        records = read_jsonl(args.path)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not JSONL: {exc}", file=sys.stderr)
        return 2
    reporter = _Reporter(args.out)
    reporter.emit(f"trace report — {args.path}")
    reporter.emit(render_trace_report(records))
    if args.chrome:
        n = write_chrome_trace(records, args.chrome)
        reporter.emit(
            f"chrome trace: {n} events written to {args.chrome} "
            f"(open in Perfetto: https://ui.perfetto.dev)"
        )
    reporter.close()
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    import json

    from repro.obs.dashboard import write_dashboard
    from repro.obs.export import read_jsonl

    try:
        records = read_jsonl(args.path)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not JSONL: {exc}", file=sys.stderr)
        return 2
    out = args.html_out or (args.path + ".html")
    write_dashboard(records, out, title=args.title or f"repro — {args.path}")
    print(f"dashboard: {len(records)} records rendered to {out}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json

    from repro.runner.bench import (
        DEFAULT_MAX_REGRESSION,
        compare_bench,
        read_history,
        render_bench_compare,
        rolling_baseline,
    )

    reports = []
    for path in args.reports:
        try:
            with open(path) as fh:
                reports.append(json.load(fh))
        except FileNotFoundError:
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {path} is not JSON: {exc}", file=sys.stderr)
            return 2
    if args.history:
        if len(reports) != 1:
            print(
                "error: with --history, pass exactly one candidate report",
                file=sys.stderr,
            )
            return 2
        try:
            records = read_history(args.history)
        except FileNotFoundError:
            print(f"error: no such file: {args.history}", file=sys.stderr)
            return 2
        baseline = rolling_baseline(records, window=args.window)
        candidate = reports[0]
        print(
            f"baseline: rolling median of last {baseline['baseline_of']} "
            f"record(s) in {args.history}"
        )
    elif len(reports) == 2:
        baseline, candidate = reports
    else:
        print(
            "error: pass two reports (baseline candidate), or one report "
            "with --history",
            file=sys.stderr,
        )
        return 2
    thresholds = {}
    for item in args.threshold or []:
        metric, _, value = item.partition("=")
        if not value:
            print(
                f"error: --threshold wants METRIC=FACTOR, got {item!r}",
                file=sys.stderr,
            )
            return 2
        thresholds[metric] = float(value)
    report = compare_bench(
        baseline, candidate,
        max_regression=(
            args.max_regression
            if args.max_regression is not None
            else DEFAULT_MAX_REGRESSION
        ),
        thresholds=thresholds,
    )
    print(render_bench_compare(report))
    if not report["ok"] and args.warn_only:
        print(
            "warn-only: regression reported but exit status forced to 0",
            file=sys.stderr,
        )
        return 0
    return 0 if report["ok"] else 1


def cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.obs.perf import render_perf_report
    from repro.runner.bench import read_history

    try:
        records = read_history(args.history)
    except FileNotFoundError:
        print(f"error: no such file: {args.history}", file=sys.stderr)
        return 2
    reporter = _Reporter(args.out)
    reporter.emit(f"perf report — {args.history}")
    try:
        reporter.emit(
            render_perf_report(
                records, frm=args.frm, to=args.to, movers=args.movers
            )
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if records and (args.flamegraph_out or args.collapsed_out):
        idx = args.to if args.to is not None else -1
        try:
            profile = records[idx].get("profile")
        except IndexError:
            profile = None
        _write_profile_exports(
            profile,
            flamegraph_out=args.flamegraph_out,
            collapsed_out=args.collapsed_out,
        )
    reporter.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("calibrate", help="Fig. 3 utilization sweep")
    p.add_argument("--levels", type=float, nargs="+",
                   default=[0.0, 0.25, 0.5, 0.75, 0.9, 1.0])
    p.add_argument("--duration", type=float, default=30.0)
    _add_runner(p)
    _add_common(p)
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("compare", help="Figs. 5/6/7 policy comparison")
    p.add_argument("--figure", choices=sorted(FIGURES), default="fig5")
    p.add_argument("--scale", choices=sorted(SCALES), default="quick")
    p.add_argument("--classes", nargs="+", choices=sorted(_CLASSES), default=["VS", "S"])
    _add_faults(p)
    _add_runner(p)
    _add_common(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("sweep", help="Fig. 9 probing-interval sweep")
    p.add_argument("--scenarios", nargs="+", choices=["traffic1", "traffic2"],
                   default=["traffic2"])
    p.add_argument("--intervals", type=float, nargs="+", default=[0.1, 10.0, 30.0])
    _add_runner(p)
    _add_common(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("sensitivity", help="parameter sweep vs the nearest baseline")
    p.add_argument("--parameter", default="k",
                   help="ExperimentConfig field to sweep (default: k)")
    p.add_argument("--values", type=float, nargs="+", default=[0.0, 0.02, 0.08])
    p.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    p.add_argument("--size-class", dest="size_class", choices=sorted(_CLASSES), default="S")
    _add_runner(p)
    _add_common(p)
    p.set_defaults(fn=cmd_sensitivity)

    p = sub.add_parser("reproduce", help="regenerate every figure")
    p.add_argument("--scale", choices=sorted(SCALES), default="quick")
    _add_faults(p)
    _add_runner(p)
    _add_common(p)
    p.set_defaults(fn=cmd_reproduce)

    p = sub.add_parser(
        "faults", help="list, show, or run fault-injection scenarios"
    )
    p.add_argument("--show", metavar="PLAN", default=None,
                   help="print a scenario (or JSON plan file) as JSON")
    p.add_argument("--run", metavar="PLAN", default=None,
                   help="run the degradation comparison for a scenario")
    p.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    _add_runner(p)
    _add_common(p)
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "bench-runner",
        help="time the Fig. 5 grid serial vs parallel vs cached "
             "(fails if payloads diverge)",
    )
    p.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="worker processes for the parallel pass (default: 2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                   help="cache directory for the cached pass "
                        "(default: .runcache)")
    p.add_argument("--bench-out", type=str, default=None, metavar="PATH",
                   help="also write the JSON report to PATH "
                        "(e.g. BENCH_runner.json)")
    p.add_argument("--profile", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="include the merged engine profile in the report "
                        "(default: --profile)")
    p.add_argument("--mem-profile", action="store_true",
                   help="add memory attribution (gc counters, tracemalloc "
                        "top sites) to the profile; implies --profile")
    p.add_argument("--run-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-run wall-clock timeout for every pass, and the "
                        "bound on the git-commit lookup for the history "
                        "record (default: unbounded runs, 10s git lookup)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry crashed/timed-out runs up to N times "
                        "(default: 0 — a bench should measure, not mask)")
    p.add_argument("--history", type=str, nargs="?",
                   default=_DEFAULT_HISTORY, const=_DEFAULT_HISTORY,
                   metavar="PATH",
                   help="append the report to this bench-history ledger "
                        f"(default: {_DEFAULT_HISTORY}; see perf-report)")
    p.add_argument("--no-history", dest="history",
                   action="store_const", const=None,
                   help="skip the bench-history ledger append")
    p.add_argument("--flamegraph-out", type=str, default=None, metavar="PATH",
                   help="write the profile's phase flamegraph as a "
                        "self-contained SVG")
    p.add_argument("--collapsed-out", type=str, default=None, metavar="PATH",
                   help="write the profile's phases in collapsed-stack "
                        "format (flamegraph.pl / speedscope compatible)")
    p.set_defaults(fn=cmd_bench_runner)

    p = sub.add_parser("cache", help="inspect, verify, or clear the run cache")
    p.add_argument("--clear", action="store_true", help="delete every entry")
    p.add_argument("--verify", action="store_true",
                   help="checksum-verify every entry, evicting corrupt ones "
                        "(exit 1 if any were evicted)")
    p.add_argument("--cache-dir", type=str, default=None, metavar="DIR")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "resume",
        help="resume an interrupted sweep from its --journal file: "
             "completed runs come from the cache, missing/failed ones "
             "re-run",
    )
    p.add_argument("journal", help="JSONL journal written via --journal")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default: 1)")
    p.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                   help="run-cache directory holding the completed results "
                        "(default: .runcache)")
    p.add_argument("--run-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-run wall-clock timeout (default: auto-scaled "
                        "when supervised; 0 disables)")
    p.add_argument("--retries", type=int, default=_DEFAULT_RETRIES,
                   metavar="N",
                   help="extra attempts per crashed/timed-out run "
                        f"(default: {_DEFAULT_RETRIES})")
    p.add_argument("--payloads-out", type=str, default=None, metavar="PATH",
                   help="write one {spec_hash, payload} JSON line per "
                        "completed run, in journal order — byte-identical "
                        "to the same export from an uninterrupted sweep")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("obs-report", help="summarize an --obs-out JSONL export")
    p.add_argument("path", help="JSONL file written via --obs-out")
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(fn=cmd_obs_report)

    p = sub.add_parser(
        "telemetry-report",
        help="grade the telemetry plane from an --obs-out export: INT port "
             "coverage vs the layout's prediction, register freshness, and "
             "decision error binned by telemetry age (needs --telquality)",
    )
    p.add_argument("path", help="JSONL file written via --obs-out")
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(fn=cmd_telemetry_report)

    p = sub.add_parser(
        "whatif-report",
        help="replay an --obs-out export's decision audits counterfactually: "
             "per-decision hindsight regret, alternative ranking policies "
             "scored against the actual scheduler, and regret attributed to "
             "telemetry staleness (best with --whatif runs)",
    )
    p.add_argument("path", help="JSONL file written via --obs-out")
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(fn=cmd_whatif_report)

    p = sub.add_parser(
        "dashboard",
        help="render an --obs-out JSONL export as one self-contained HTML "
             "page (no external resources; best with --sample-interval runs)",
    )
    p.add_argument("path", help="JSONL file written via --obs-out")
    p.add_argument("--html-out", type=str, default=None, metavar="PATH",
                   help="output HTML path (default: <path>.html)")
    p.add_argument("--title", type=str, default=None,
                   help="page title (default: derived from the input path)")
    p.set_defaults(fn=cmd_dashboard)

    p = sub.add_parser(
        "bench-compare",
        help="diff two bench-runner JSON reports (or one report against the "
             "bench-history rolling baseline); exits 1 when the candidate "
             "regresses past the allowed factor or loses byte-identity",
    )
    p.add_argument("reports", nargs="+",
                   help="bench-runner JSON reports: baseline candidate, or "
                        "just the candidate with --history")
    p.add_argument("--history", type=str, default=None, metavar="PATH",
                   help="gate the single candidate report against the "
                        "rolling-median baseline of this ledger's last "
                        "--window records")
    p.add_argument("--window", type=int, default=_DEFAULT_WINDOW, metavar="N",
                   help="rolling-baseline window for --history "
                        f"(default: {_DEFAULT_WINDOW})")
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but always exit 0 (for advisory "
                        "CI jobs on unpinned hardware)")
    p.add_argument("--max-regression", type=float, default=None,
                   metavar="FRAC",
                   help="allowed slowdown fraction for every timing metric "
                        "(0.5 allows 1.5x; default: 0.5)")
    p.add_argument("--threshold", action="append", metavar="METRIC=FRAC",
                   help="per-metric override, e.g. --threshold cached_s=2.0 "
                        "(repeatable)")
    p.set_defaults(fn=cmd_bench_compare)

    p = sub.add_parser(
        "perf-report",
        help="render the bench-history ledger: metric trends with "
             "sparklines and the top phase movers between two records",
    )
    p.add_argument("history", nargs="?", default=_DEFAULT_HISTORY,
                   help="bench-history JSONL ledger "
                        f"(default: {_DEFAULT_HISTORY})")
    p.add_argument("--from", dest="frm", type=int, default=0, metavar="IDX",
                   help="older record index for the movers diff (negative "
                        "counts from the end; default: 0 = oldest)")
    p.add_argument("--to", dest="to", type=int, default=-1, metavar="IDX",
                   help="newer record index for the movers diff "
                        "(default: -1 = newest)")
    p.add_argument("--movers", type=int, default=10, metavar="N",
                   help="how many top phase movers to list (default: 10)")
    p.add_argument("--flamegraph-out", type=str, default=None, metavar="PATH",
                   help="write the --to record's phase flamegraph as a "
                        "self-contained SVG")
    p.add_argument("--collapsed-out", type=str, default=None, metavar="PATH",
                   help="write the --to record's phases in collapsed-stack "
                        "format")
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(fn=cmd_perf_report)

    p = sub.add_parser(
        "trace-report",
        help="summarize a --trace-out span export (critical-path delay "
             "decomposition vs the Algorithm-1 estimate)",
    )
    p.add_argument("path", help="JSONL file written via --trace-out")
    p.add_argument("--chrome", type=str, default=None, metavar="PATH",
                   help="also convert the spans to Chrome trace-event JSON "
                        "(loadable in Perfetto / chrome://tracing)")
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(fn=cmd_trace_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        from repro.runner.supervisor import RunInterrupted, RunsFailedError

        if isinstance(exc, RunInterrupted):
            # Completed results (and the journal, if one was requested) are
            # already persisted; summarize and exit with the SIGINT code.
            pending = max(0, exc.total - exc.completed - exc.failed)
            print("\nsweep interrupted", file=sys.stderr)
            print(f"  completed : {exc.completed}/{exc.total}", file=sys.stderr)
            print(f"  failed    : {exc.failed}", file=sys.stderr)
            print(f"  pending   : {pending}", file=sys.stderr)
            if exc.journal_path:
                print(
                    f"  resume    : repro resume {exc.journal_path}",
                    file=sys.stderr,
                )
            return 130
        if isinstance(exc, RunsFailedError):
            print(f"error: {exc}", file=sys.stderr)
            for result in exc.failures:
                failure = result.failure or {}
                print(
                    f"  {result.spec.label()}: {failure.get('kind', '?')}/"
                    f"{failure.get('error_type', '?')} after "
                    f"{failure.get('attempts', '?')} attempt(s)"
                    + (
                        f" (signal {failure['signal']})"
                        if failure.get("signal")
                        else ""
                    ),
                    file=sys.stderr,
                )
            return 1
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
