"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish simulator, data-plane, telemetry, and scheduling
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, running a finished simulator,
    or cancelling an event twice.
    """


class TopologyError(ReproError):
    """Invalid network construction (duplicate names, unknown nodes,
    self-links, disconnected graphs where connectivity is required)."""


class RoutingError(ReproError):
    """No route exists between two nodes, or a forwarding table lookup
    failed at runtime."""


class PacketError(ReproError):
    """Malformed packet: bad header encode/decode, truncated INT stack,
    or a payload that does not match its declared length."""


class DataPlaneError(ReproError):
    """A P4-style pipeline misbehaved: unknown table, register index out of
    range, or a program raised during packet processing."""


class TelemetryError(ReproError):
    """Probe/collector protocol violation, e.g. an undecodable probe payload
    or an INT stack claiming more hops than the payload carries."""


class SchedulingError(ReproError):
    """Scheduler-level failure: no eligible edge server, unknown requester,
    or a query for a node absent from the inferred topology."""


class WorkloadError(ReproError):
    """Invalid workload specification (empty size class, negative sizes,
    malformed scenario definitions)."""


class ExperimentError(ReproError):
    """Experiment harness misconfiguration or an experiment invariant that
    failed (e.g. mismatched task counts between compared policies)."""


class FaultError(ReproError):
    """Invalid fault plan or fault-injection misuse (unknown fault kind,
    unresolvable target, loss events without a random stream)."""
