"""Unit conventions and conversion helpers.

The whole codebase uses a single set of base units so that quantities can be
combined without conversion mistakes:

* **time** — seconds, as ``float``.
* **data size** — bytes, as ``int``.
* **data rate** — bits per second, as ``float``.

Every function here converts *into* those base units (``ms(10)`` is "10
milliseconds expressed in seconds") or *out of* them (``to_ms(0.01)`` is
"0.01 s expressed in milliseconds"). Keeping the conversions in one place
mirrors the paper's mixed usage of ms/KB/Mbps while preventing unit drift.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# time
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity helper, for symmetry in configuration code."""
    return float(value)


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return float(value) * 1e-3


def us(value: float) -> float:
    """Microseconds -> seconds."""
    return float(value) * 1e-6


def ns(value: float) -> float:
    """Nanoseconds -> seconds."""
    return float(value) * 1e-9


def to_ms(t: float) -> float:
    """Seconds -> milliseconds."""
    return t * 1e3


def to_us(t: float) -> float:
    """Seconds -> microseconds."""
    return t * 1e6


# ---------------------------------------------------------------------------
# data size
# ---------------------------------------------------------------------------

def bytes_(value: float) -> int:
    """Identity helper for byte counts (rounded to an integer)."""
    return int(round(value))


def kb(value: float) -> int:
    """Kilobytes (10^3 bytes, as in the paper's Table I) -> bytes."""
    return int(round(value * 1e3))


def mb(value: float) -> int:
    """Megabytes (10^6 bytes) -> bytes."""
    return int(round(value * 1e6))


def kib(value: float) -> int:
    """Kibibytes (2^10 bytes) -> bytes."""
    return int(round(value * 1024))


def to_kb(nbytes: int) -> float:
    """Bytes -> kilobytes."""
    return nbytes / 1e3


def to_mb(nbytes: int) -> float:
    """Bytes -> megabytes."""
    return nbytes / 1e6


# ---------------------------------------------------------------------------
# data rate
# ---------------------------------------------------------------------------

def bps(value: float) -> float:
    """Bits per second (identity helper)."""
    return float(value)


def kbps(value: float) -> float:
    """Kilobits per second -> bits per second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Megabits per second -> bits per second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Gigabits per second -> bits per second."""
    return float(value) * 1e9


def to_mbps(rate_bps: float) -> float:
    """Bits per second -> megabits per second."""
    return rate_bps / 1e6


def transmission_time(nbytes: int, rate_bps: float) -> float:
    """Time (s) to serialize ``nbytes`` onto a link running at ``rate_bps``.

    >>> transmission_time(1500, mbps(20))  # 1500 B at 20 Mb/s
    0.0006
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return (nbytes * 8.0) / rate_bps


def bytes_at_rate(rate_bps: float, duration: float) -> int:
    """Number of bytes a source at ``rate_bps`` emits over ``duration`` s."""
    if duration < 0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    return int(rate_bps * duration / 8.0)
