"""Device-side server-selection policies.

The paper's first scheduler mode returns a sorted list and devices "select
the edge server at the top"; its second mode returns raw (delay, bandwidth)
pairs "to let edge devices implement a custom selection algorithm"
(Section III-B).  A policy is a callable ``(job, ranking) -> [server_addr
per task]``; :class:`~repro.edge.device.EdgeDevice` accepts one via
``selection_policy``.

Policies for sorted rankings (values are floats):

* :func:`top_k` — the paper's default: the best *k* distinct servers.

Policies for raw rankings (values are ``(delay_seconds, bandwidth_bps)``):

* :func:`min_completion_time` — per task, estimate ``delay + data/bandwidth``
  and greedily assign the best distinct server to the largest task first.
  This uses both metrics at once, something neither of the paper's sorted
  modes can do, and is evaluated in the selection-policy ablation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.edge.task import Job
from repro.errors import SchedulingError

__all__ = ["top_k", "min_completion_time", "SelectionPolicy"]

Ranking = List[Tuple[int, object]]
SelectionPolicy = "Callable[[Job, Ranking], List[int]]"


def top_k(job: Job, ranking: Ranking) -> List[int]:
    """Best-first assignment: task *i* goes to ranking entry *i*, wrapping
    round-robin when the job has more tasks than candidates."""
    if not ranking:
        raise SchedulingError("empty ranking")
    addrs = [addr for addr, _value in ranking]
    return [addrs[i % len(addrs)] for i in range(len(job.tasks))]


def min_completion_time(job: Job, ranking: Ranking) -> List[int]:
    """Greedy estimated-finish-time assignment over a *raw* ranking.

    For each (task, server) pair the estimated network cost is
    ``delay + task_bytes * 8 / bandwidth``; tasks are assigned largest-first
    so the biggest transfer gets the best pipe, each server used at most
    once until the pool is exhausted."""
    if not ranking:
        raise SchedulingError("empty ranking")
    for _addr, value in ranking:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise SchedulingError(
                "min_completion_time needs a raw ranking (delay, bandwidth); "
                "query the scheduler with metric='raw'"
            )

    order = sorted(
        range(len(job.tasks)), key=lambda i: -job.tasks[i].data_bytes
    )
    available = list(ranking)
    assignment: List[int] = [0] * len(job.tasks)
    for task_index in order:
        task = job.tasks[task_index]
        if not available:
            available = list(ranking)  # pool exhausted: reuse
        best_pos = 0
        best_cost = float("inf")
        for pos, (_addr, (delay, bandwidth)) in enumerate(available):
            transfer = (task.data_bytes * 8.0 / bandwidth) if bandwidth > 0 else float("inf")
            cost = delay + transfer
            if cost < best_cost:
                best_cost = cost
                best_pos = pos
        addr, _value = available.pop(best_pos)
        assignment[task_index] = addr
    return assignment
