"""Background congestion: the paper's iperf traffic injection.

Section IV: "At any given time, one or two Iperf transfers run between
randomly selected nodes for 30s or 60s duration.  Thus, different regions of
the network become congested during the experiments."

Section IV-C adds two structured scenarios for the probing-frequency study:

* **Traffic 1** (infrequent change): three transfers, 30 s on / 30 s off,
  started 10 s apart;
* **Traffic 2** (frequent change): three transfers, 5 s on / 5 s off.

Like the workload, the full injection plan is pre-materialized from a
dedicated random stream so all policies see the same congestion timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.simnet.engine import Simulator
from repro.simnet.flows import UdpCbrFlow
from repro.simnet.host import Host

__all__ = [
    "TrafficScenario",
    "PlannedTransfer",
    "BackgroundTraffic",
    "DEFAULT_SCENARIO",
    "TRAFFIC_1",
    "TRAFFIC_2",
]


@dataclass(frozen=True)
class TrafficScenario:
    """Shape of a background-traffic injection pattern."""

    name: str
    slots: int                                  # concurrent transfer slots
    duration_choices: Tuple[float, ...]         # seconds a transfer runs
    gap_choices: Tuple[float, ...]              # idle time between transfers in a slot
    stagger: float                              # start offset between slots
    rate_fraction_range: Tuple[float, float]    # CBR rate as fraction of capacity

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise WorkloadError("scenario needs at least one slot")
        if not self.duration_choices:
            raise WorkloadError("scenario needs duration choices")
        lo, hi = self.rate_fraction_range
        if not 0 < lo <= hi:
            raise WorkloadError(f"bad rate fraction range ({lo}, {hi})")

    def scaled(self, time_scale: float) -> "TrafficScenario":
        """Shrink every temporal parameter (quick test/benchmark mode)."""
        if time_scale <= 0:
            raise WorkloadError("time_scale must be positive")
        return TrafficScenario(
            name=f"{self.name}(x{time_scale:g})",
            slots=self.slots,
            duration_choices=tuple(d * time_scale for d in self.duration_choices),
            gap_choices=tuple(g * time_scale for g in self.gap_choices),
            stagger=self.stagger * time_scale,
            rate_fraction_range=self.rate_fraction_range,
        )


# Paper defaults.  Rates: iperf in the paper pushes "fixed-rate traffic"
# heavy enough to congest (their Fig. 3 sweeps up to 100 % of the ~20 Mb/s
# effective capacity); we draw 70-100 % of capacity per transfer.
DEFAULT_SCENARIO = TrafficScenario(
    name="default",
    slots=2,
    duration_choices=(30.0, 60.0),
    gap_choices=(0.0, 30.0),
    stagger=15.0,
    rate_fraction_range=(0.7, 1.0),
)

TRAFFIC_1 = TrafficScenario(
    name="traffic1",
    slots=3,
    duration_choices=(30.0,),
    gap_choices=(30.0,),
    stagger=10.0,
    rate_fraction_range=(0.7, 1.0),
)

TRAFFIC_2 = TrafficScenario(
    name="traffic2",
    slots=3,
    duration_choices=(5.0,),
    gap_choices=(5.0,),
    stagger=3.0,
    rate_fraction_range=(0.7, 1.0),
)


@dataclass(frozen=True)
class PlannedTransfer:
    start_time: float
    src_name: str
    dst_name: str
    rate_bps: float
    duration: float
    # Per-transfer RNG seed: each flow draws its Poisson gaps from its own
    # generator, so emission times are identical across policy runs no matter
    # how other traffic interleaves simulator events.
    seed: int = 0


class BackgroundTraffic:
    """Pre-plans and replays a scenario's iperf transfers."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Dict[str, Host],
        host_addrs: Dict[str, int],
        scenario: TrafficScenario,
        rng: np.random.Generator,
        *,
        link_capacity_bps: float,
        horizon: float,
    ) -> None:
        if len(hosts) < 2:
            raise WorkloadError("background traffic needs at least two hosts")
        self.sim = sim
        self.hosts = hosts
        self.host_addrs = host_addrs
        self.scenario = scenario
        self.link_capacity_bps = link_capacity_bps
        self.horizon = horizon
        self._flow_rng = rng
        self.plan: List[PlannedTransfer] = self._build_plan(rng)
        self.flows: List[UdpCbrFlow] = []
        self.transfers_started = 0

    def _build_plan(self, rng: np.random.Generator) -> List[PlannedTransfer]:
        names = sorted(self.hosts)
        plan: List[PlannedTransfer] = []
        for slot in range(self.scenario.slots):
            t = slot * self.scenario.stagger
            while t < self.horizon:
                i, j = rng.choice(len(names), size=2, replace=False)
                rate = self.link_capacity_bps * float(
                    rng.uniform(*self.scenario.rate_fraction_range)
                )
                duration = float(
                    self.scenario.duration_choices[
                        int(rng.integers(0, len(self.scenario.duration_choices)))
                    ]
                )
                plan.append(
                    PlannedTransfer(
                        start_time=t,
                        src_name=names[int(i)],
                        dst_name=names[int(j)],
                        rate_bps=rate,
                        duration=duration,
                        seed=int(rng.integers(0, 2**31 - 1)),
                    )
                )
                gap = float(
                    self.scenario.gap_choices[
                        int(rng.integers(0, len(self.scenario.gap_choices)))
                    ]
                ) if self.scenario.gap_choices else 0.0
                t += duration + gap
        plan.sort(key=lambda p: p.start_time)
        return plan

    def start(self) -> None:
        for planned in self.plan:
            self.sim.schedule_at(planned.start_time, self._launch, planned)

    def _launch(self, planned: PlannedTransfer) -> None:
        flow = UdpCbrFlow(
            self.hosts[planned.src_name],
            self.host_addrs[planned.dst_name],
            planned.rate_bps,
            burstiness="poisson",
            rng=np.random.default_rng(planned.seed),
        )
        self.flows.append(flow)
        self.transfers_started += 1
        flow.run_for(planned.duration)

    def stop(self) -> None:
        for flow in self.flows:
            flow.stop()
