"""Tasks, jobs, and the paper's Table I size classes.

=================  ===============  ====================
type               data size (KB)   execution time (ms)
=================  ===============  ====================
Very small (VS)    0 – 1000         0 – 2000
Small (S)          1500 – 2500      2500 – 4500
Medium (M)         3000 – 4000      5000 – 7000
Large (L)          4500 – 5500      7500 – 9500
=================  ===============  ====================

Sizes are drawn uniformly from the class range.  An optional ``scale``
shrinks both dimensions proportionally so tests and benchmarks can run the
same code paths in a fraction of the simulated (and wall-clock) time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.units import kb, ms

__all__ = ["SizeClass", "TABLE_I", "sample_task", "Task", "Job"]


class SizeClass(enum.Enum):
    """The four workload size classes of Table I."""

    VS = "very_small"
    S = "small"
    M = "medium"
    L = "large"

    @property
    def label(self) -> str:
        return {"very_small": "VS", "small": "S", "medium": "M", "large": "L"}[self.value]


# (data size range in bytes, execution time range in seconds), per Table I.
TABLE_I: Dict[SizeClass, Tuple[Tuple[int, int], Tuple[float, float]]] = {
    SizeClass.VS: ((kb(0), kb(1000)), (ms(0), ms(2000))),
    SizeClass.S: ((kb(1500), kb(2500)), (ms(2500), ms(4500))),
    SizeClass.M: ((kb(3000), kb(4000)), (ms(5000), ms(7000))),
    SizeClass.L: ((kb(4500), kb(5500)), (ms(7500), ms(9500))),
}

_task_ids = itertools.count(1)
_job_ids = itertools.count(1)


def reset_ids() -> None:
    """Restart task/job id allocation at 1.

    Experiment runs call this so the ids a run hands out depend only on the
    run itself, never on how many runs preceded it in the process — the
    property the runner's content-addressed result cache relies on."""
    global _task_ids, _job_ids
    _task_ids = itertools.count(1)
    _job_ids = itertools.count(1)


def sample_task(
    rng: np.random.Generator, size_class: SizeClass, *, scale: float = 1.0
) -> Tuple[int, float]:
    """Draw ``(data_bytes, exec_time_seconds)`` for one task of the class."""
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    (data_lo, data_hi), (exec_lo, exec_hi) = TABLE_I[size_class]
    data = int(rng.uniform(data_lo, data_hi) * scale)
    exec_time = float(rng.uniform(exec_lo, exec_hi)) * scale
    return data, exec_time


@dataclass
class Task:
    """One unit of offloadable work: upload ``data_bytes``, run for
    ``exec_time`` on the chosen server, return a result."""

    job_id: int
    size_class: SizeClass
    data_bytes: int
    exec_time: float
    task_id: int = field(default_factory=lambda: next(_task_ids))
    # Heterogeneity extension: capabilities the executing server must have
    # (e.g. {"gpu"}); empty = runs anywhere.
    requirements: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.data_bytes < 0:
            raise WorkloadError(f"task data size must be >= 0, got {self.data_bytes}")
        if self.exec_time < 0:
            raise WorkloadError(f"task execution time must be >= 0, got {self.exec_time}")


@dataclass
class Job:
    """A set of tasks submitted together by one edge device.

    Serverless jobs carry one task; distributed-computing jobs carry three
    (Section IV), each dispatched to a distinct edge server."""

    device_name: str
    workload: str
    tasks: List[Task]
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if not self.tasks:
            raise WorkloadError("a job needs at least one task")

    @property
    def size_class(self) -> SizeClass:
        return self.tasks[0].size_class
