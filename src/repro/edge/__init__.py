"""Edge-computing workload layer.

Models the paper's Section IV experiments: edge devices that query the
scheduler and offload tasks, edge servers that receive data and execute,
workload generators (serverless = 1 task/job, distributed = 3 tasks/job)
with Table I size classes, and iperf-style background congestion scenarios.
"""

from repro.edge.task import SizeClass, Task, Job, TABLE_I, sample_task
from repro.edge.server import EdgeServer
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector, TaskRecord
from repro.edge.workload import WorkloadSpec, WorkloadGenerator, WORKLOAD_SERVERLESS, WORKLOAD_DISTRIBUTED
from repro.edge.background import BackgroundTraffic, TrafficScenario

__all__ = [
    "SizeClass",
    "Task",
    "Job",
    "TABLE_I",
    "sample_task",
    "EdgeServer",
    "EdgeDevice",
    "MetricsCollector",
    "TaskRecord",
    "WorkloadSpec",
    "WorkloadGenerator",
    "WORKLOAD_SERVERLESS",
    "WORKLOAD_DISTRIBUTED",
    "BackgroundTraffic",
    "TrafficScenario",
]
