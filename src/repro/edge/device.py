"""Edge devices: query the scheduler, offload task data, await results
(Fig. 1, steps 3-6).

One :class:`EdgeDevice` per host.  Submitting a job:

1. send a scheduling query (delay or bandwidth metric, per the experiment);
2. on the ranked response, assign the job's tasks to the top servers —
   distributed jobs use the top *n* distinct servers, matching the paper's
   "three nodes are selected to offload tasks";
3. upload each task's data with the reliable transport;
4. execution happens remotely; the result datagram closes the task's record.

Every timestamp lands in the shared :class:`~repro.edge.metrics.MetricsCollector`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.client import SchedulerClient
from repro.edge.metrics import MetricsCollector, TaskRecord
from repro.edge.task import Job
from repro.errors import WorkloadError
from repro.simnet.addressing import PORT_TASK, PROTO_UDP
from repro.simnet.flows import ReliableTransfer
from repro.simnet.host import Host
from repro.simnet.packet import Packet

__all__ = ["EdgeDevice"]


class EdgeDevice:
    """Task-submitting endpoint on one host."""

    def __init__(
        self,
        host: Host,
        scheduler_addr: int,
        metrics: MetricsCollector,
        *,
        metric: str = "delay",
        task_port: int = PORT_TASK,
        on_job_done: Optional[Callable[[Job], None]] = None,
        selection_policy: Optional[Callable[[Job, List[Tuple[int, object]]], List[int]]] = None,
        task_timeout: Optional[float] = None,
        retry_timeout: Optional[float] = None,
        max_attempts: int = 1,
        retry_backoff: float = 2.0,
    ) -> None:
        if task_timeout is not None and task_timeout <= 0:
            raise WorkloadError(f"task_timeout must be positive, got {task_timeout}")
        if retry_timeout is not None and retry_timeout <= 0:
            raise WorkloadError(f"retry_timeout must be positive, got {retry_timeout}")
        if max_attempts < 1:
            raise WorkloadError(f"max_attempts must be >= 1, got {max_attempts}")
        if retry_backoff < 1.0:
            raise WorkloadError(f"retry_backoff must be >= 1, got {retry_backoff}")
        self.host = host
        self.metrics = metrics
        self.metric = metric
        self.task_port = task_port
        self.on_job_done = on_job_done
        # Optional per-task deadline from submission: a task whose result
        # never arrives (server crash, device unreachable past the server's
        # retransmission budget) is marked failed instead of pending forever.
        # Experiments leave this off — the paper has no task-abandonment
        # semantics — but long-running deployments need it.
        self.task_timeout = task_timeout
        self.tasks_timed_out = 0
        # Retry / failover (off unless retry_timeout is set): a task whose
        # result has not arrived retry_timeout seconds after its upload
        # started is re-sent to the *next* server in the job's ranking —
        # the graceful-degradation answer to a crashed or unreachable edge
        # server.  Timeouts back off exponentially; after max_attempts the
        # task is marked failed (or left to the hard task_timeout).
        self.retry_timeout = retry_timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.tasks_retried = 0
        self.failovers = 0
        self._rankings: Dict[int, List[int]] = {}      # job_id -> ranked addrs
        self._tasks: Dict[int, object] = {}            # task_id -> Task
        self._task_attempts: Dict[int, int] = {}
        self._task_server_idx: Dict[int, int] = {}
        if selection_policy is None:
            from repro.edge.policies import top_k

            selection_policy = top_k
        self.selection_policy = selection_policy
        self.client = SchedulerClient(host, scheduler_addr)
        self.result_port = host.ephemeral_port()
        host.bind(PROTO_UDP, self.result_port, self._on_result)
        self._records: Dict[int, TaskRecord] = {}
        self._job_pending: Dict[int, int] = {}   # job_id -> tasks outstanding
        self._jobs: Dict[int, Job] = {}
        self.jobs_submitted = 0
        self.jobs_completed = 0

    # -- submission -------------------------------------------------------

    def submit_job(self, job: Job) -> None:
        if job.device_name != self.host.name:
            raise WorkloadError(
                f"job {job.job_id} belongs to {job.device_name}, not {self.host.name}"
            )
        now = self.host.sim.now
        self.jobs_submitted += 1
        self._jobs[job.job_id] = job
        self._job_pending[job.job_id] = len(job.tasks)
        for task in job.tasks:
            record = TaskRecord(
                task_id=task.task_id,
                job_id=job.job_id,
                device=self.host.name,
                workload=job.workload,
                size_class=task.size_class,
                data_bytes=task.data_bytes,
                exec_time=task.exec_time,
                submitted_at=now,
            )
            self._records[task.task_id] = record
            self.metrics.add(record)
            if self.task_timeout is not None:
                self.host.sim.schedule(
                    self.task_timeout, self._on_task_timeout, task.task_id
                )
        request_id = self.client.query(
            self.metric, lambda ranking, j=job: self._on_ranking(j, ranking)
        )
        obs = self.host.sim.obs
        if obs:
            trace = getattr(obs, "trace", None)
            if trace is not None:
                # Correlate each task with its scheduler query so the
                # decision becomes a child span of the task trace.
                for task in job.tasks:
                    trace.task_request(task.task_id, request_id)

    def _on_task_timeout(self, task_id: int) -> None:
        record = self._records.get(task_id)
        if record is None or record.result_received_at is not None or record.failed:
            return
        self.tasks_timed_out += 1
        self._mark_task_failed(record)

    def _mark_task_failed(self, record: TaskRecord) -> None:
        """Terminal failure: close the record and the job's books.  Safe to
        call from any of the competing failure paths (hard timeout, retry
        exhaustion, server rejection) — first caller wins."""
        if record.failed or record.result_received_at is not None:
            return
        record.failed = True
        remaining = self._job_pending.get(record.job_id, 0) - 1
        self._job_pending[record.job_id] = remaining
        self._finish_job_if_done(record.job_id)

    # -- server assignment ----------------------------------------------------

    def _on_ranking(self, job: Job, ranking: List[Tuple[int, float]]) -> None:
        now = self.host.sim.now
        if not ranking:
            for task in job.tasks:
                record = self._records[task.task_id]
                record.failed = True
            self._job_pending[job.job_id] = 0
            self._finish_job_if_done(job.job_id)
            return
        servers = self.selection_policy(job, ranking)
        if len(servers) != len(job.tasks):
            raise WorkloadError(
                f"selection policy returned {len(servers)} servers for "
                f"{len(job.tasks)} tasks"
            )
        ranked_addrs = [addr for addr, _value in ranking]
        if self.retry_timeout is not None:
            self._rankings[job.job_id] = ranked_addrs
        for task, server_addr in zip(job.tasks, servers):
            record = self._records[task.task_id]
            record.ranking_received_at = now
            record.server_addr = server_addr
            if self.retry_timeout is not None:
                self._tasks[task.task_id] = task
                self._task_attempts[task.task_id] = 1
                self._task_server_idx[task.task_id] = ranked_addrs.index(server_addr)
            self._start_transfer(task, record, server_addr)

    # -- data upload --------------------------------------------------------------

    def _start_transfer(self, task, record: TaskRecord, server_addr: int) -> None:
        record.transfer_started = self.host.sim.now
        transfer = ReliableTransfer(
            self.host,
            server_addr,
            self.task_port,
            task.data_bytes,
            metadata={
                "task_id": task.task_id,
                "exec_time": task.exec_time,
                "reply_addr": self.host.addr,
                "reply_port": self.result_port,
                "requirements": task.requirements,
            },
            on_complete=lambda t, r=record: self._on_transfer_done(r, t),
        )
        transfer.start()
        if self.retry_timeout is not None:
            attempt = self._task_attempts.get(task.task_id, 1)
            deadline = self.retry_timeout * (self.retry_backoff ** (attempt - 1))
            self.host.sim.schedule(deadline, self._check_task, task.task_id)

    def _check_task(self, task_id: int) -> None:
        """Retry deadline: if the result is still outstanding, fail over to
        the next-ranked server, or give up once attempts are exhausted."""
        record = self._records.get(task_id)
        if record is None or record.result_received_at is not None or record.failed:
            return
        attempt = self._task_attempts.get(task_id, 1)
        if attempt >= self.max_attempts:
            self._mark_task_failed(record)
            return
        task = self._tasks.get(task_id)
        ranked = self._rankings.get(record.job_id)
        if task is None or not ranked:
            self._mark_task_failed(record)
            return
        next_idx = (self._task_server_idx.get(task_id, 0) + 1) % len(ranked)
        next_addr = ranked[next_idx]
        self._task_attempts[task_id] = attempt + 1
        self._task_server_idx[task_id] = next_idx
        self.tasks_retried += 1
        if next_addr != record.server_addr:
            self.failovers += 1
        record.server_addr = next_addr
        obs = self.host.sim.obs
        if obs:
            obs.events.task_transition(
                task_id=task_id,
                state="retry",
                device=self.host.name,
                server_addr=next_addr,
                attempt=attempt + 1,
            )
        self._start_transfer(task, record, next_addr)

    def _on_transfer_done(self, record: TaskRecord, transfer: ReliableTransfer) -> None:
        record.transfer_completed = self.host.sim.now
        record.retransmissions = transfer.retransmissions

    # -- completion ---------------------------------------------------------------

    def _on_result(self, packet: Packet) -> None:
        msg = packet.message
        if not (isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "task_result"):
            return
        _tag, task_id, ok, server_addr = msg
        # Acknowledge every copy — the server retransmits until it hears us.
        ack = self.host.new_packet(
            server_addr,
            protocol=PROTO_UDP,
            src_port=self.result_port,
            dst_port=packet.src_port,
            message=("result_ack", task_id),
        )
        self.host.send(ack)
        record = self._records.get(task_id)
        if record is None or record.result_received_at is not None or record.failed:
            return
        if not ok:
            self._mark_task_failed(record)
            return
        record.result_received_at = self.host.sim.now
        remaining = self._job_pending.get(record.job_id, 0) - 1
        self._job_pending[record.job_id] = remaining
        self._finish_job_if_done(record.job_id)

    def _finish_job_if_done(self, job_id: int) -> None:
        if self._job_pending.get(job_id, 1) > 0:
            return
        job = self._jobs.pop(job_id, None)
        self._job_pending.pop(job_id, None)
        self._rankings.pop(job_id, None)
        if job is None:
            return
        for task in job.tasks:
            self._tasks.pop(task.task_id, None)
            self._task_attempts.pop(task.task_id, None)
            self._task_server_idx.pop(task.task_id, None)
        self.jobs_completed += 1
        if self.on_job_done is not None:
            self.on_job_done(job)
