"""Edge servers: receive task data, execute, return results (Fig. 1, step 6).

The base experiments follow the paper in treating compute as uncontended —
tasks run for exactly their nominal execution time regardless of what else
the server is doing (the paper's evaluation isolates *network* effects; the
compute-aware scheduler is future work).  Setting ``max_concurrent`` turns
on a FIFO run queue, which the compute-aware extension builds on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set

from repro.errors import WorkloadError
from repro.simnet.addressing import PORT_TASK, PROTO_UDP
from repro.simnet.engine import EventHandle, PeriodicTimer
from repro.simnet.flows import TransferSinkApp, _ReassemblyState
from repro.simnet.host import Host
from repro.simnet.packet import HEADER_OVERHEAD, MTU

__all__ = ["EdgeServer", "DEFAULT_RESULT_SIZE"]

DEFAULT_RESULT_SIZE = 1000  # bytes: a small result message (e.g. a FaaS reply)
PORT_LOAD_REPORT = 5003


class EdgeServer:
    """Task execution endpoint on one host."""

    def __init__(
        self,
        host: Host,
        *,
        port: int = PORT_TASK,
        max_concurrent: Optional[int] = None,
        capabilities: Optional[Set[str]] = None,
        result_size: int = DEFAULT_RESULT_SIZE,
        load_report_addr: Optional[int] = None,
        load_report_interval: float = 1.0,
    ) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise WorkloadError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if result_size > MTU:
            raise WorkloadError(f"result_size {result_size} exceeds the {MTU}B MTU")
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self.capabilities = set(capabilities or ())
        self.result_size = max(HEADER_OVERHEAD, result_size)
        self.sink = TransferSinkApp(host, port, on_flow_complete=self._on_task_data)
        self.running = 0
        self.queued: Deque[dict] = deque()
        self.tasks_received = 0
        self.tasks_completed = 0
        self.tasks_rejected = 0
        self.busy_time = 0.0
        # Fault-injection state.  A crashed server silently loses in-flight
        # and arriving work (the device's retry/failover recovers it); a
        # paused one keeps accepting but stops starting executions.
        self.alive = True
        self.paused = False
        self.crashes = 0
        self.tasks_dropped = 0
        self._exec_handles: Dict[int, EventHandle] = {}
        # Result datagrams are retransmitted until the device acknowledges —
        # a lost result must not strand the task.
        self._unacked_results: Dict[int, dict] = {}
        self.result_retransmissions = 0
        host.bind(PROTO_UDP, port, self._on_result_ack)

        self._load_report_addr = load_report_addr
        self._load_timer: Optional[PeriodicTimer] = None
        if load_report_addr is not None:
            self._load_timer = PeriodicTimer(
                host.sim, load_report_interval, self._send_load_report
            )
            self._load_timer.start()

    # -- data arrival --------------------------------------------------------

    def _on_task_data(self, state: _ReassemblyState) -> None:
        meta = state.metadata
        required = {"task_id", "exec_time", "reply_addr", "reply_port"}
        if not required.issubset(meta):
            return  # not a task upload (some other user of the port)
        if not self.alive:
            # A crashed server answers nothing — not even a failure result.
            # The device's task timeout / retry path is the recovery story.
            self.tasks_dropped += 1
            return
        requirements = meta.get("requirements", frozenset())
        if requirements and not set(requirements).issubset(self.capabilities):
            # Heterogeneity extension: this server cannot run the task.
            self.tasks_rejected += 1
            self._send_result(meta, ok=False)
            return
        self.tasks_received += 1
        self._trace_event(meta, "arrived")
        if self.paused or (
            self.max_concurrent is not None and self.running >= self.max_concurrent
        ):
            self.queued.append(meta)
            self._trace_event(meta, "queued")
            return
        self._start_execution(meta)

    # -- execution ----------------------------------------------------------

    def _trace_event(self, meta: dict, event: str) -> None:
        """Stage one task-lifecycle timestamp for causal tracing (no-op
        unless a tracing-enabled obs hub is attached)."""
        obs = self.host.sim.obs
        if obs:
            trace = getattr(obs, "trace", None)
            if trace is not None:
                trace.task_server_event(
                    int(meta["task_id"]), event, server_addr=self.host.addr
                )

    def _start_execution(self, meta: dict) -> None:
        self.running += 1
        exec_time = float(meta["exec_time"])
        self.busy_time += exec_time
        self._trace_event(meta, "exec_start")
        self._exec_handles[int(meta["task_id"])] = self.host.sim.schedule(
            exec_time, self._finish_execution, meta
        )

    def _finish_execution(self, meta: dict) -> None:
        self._exec_handles.pop(int(meta["task_id"]), None)
        self.running -= 1
        self.tasks_completed += 1
        self._trace_event(meta, "exec_end")
        self._send_result(meta, ok=True)
        if self.paused:
            return
        if self.queued and (self.max_concurrent is None or self.running < self.max_concurrent):
            self._start_execution(self.queued.popleft())

    def _send_result(self, meta: dict, *, ok: bool) -> None:
        task_id = int(meta["task_id"])
        self._unacked_results[task_id] = meta
        self._trace_event(meta, "result_sent")
        self._transmit_result(meta, ok, attempt=0)

    # Retransmission schedule: 1 s backoff doubling, capped; gives up after
    # RESULT_MAX_ATTEMPTS (the device is presumed gone).
    RESULT_MAX_ATTEMPTS = 12

    def _transmit_result(self, meta: dict, ok: bool, attempt: int) -> None:
        task_id = int(meta["task_id"])
        if task_id not in self._unacked_results:
            return  # acknowledged in the meantime
        if attempt >= self.RESULT_MAX_ATTEMPTS:
            del self._unacked_results[task_id]
            return
        if attempt > 0:
            self.result_retransmissions += 1
        result = self.host.new_packet(
            int(meta["reply_addr"]),
            protocol=PROTO_UDP,
            src_port=self.port,
            dst_port=int(meta["reply_port"]),
            size_bytes=self.result_size,
            message=("task_result", task_id, ok, self.host.addr),
        )
        self.host.send(result)
        backoff = min(8.0, 1.0 * (2 ** attempt))
        self.host.sim.schedule(backoff, self._transmit_result, meta, ok, attempt + 1)

    def _on_result_ack(self, packet) -> None:
        msg = packet.message
        if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "result_ack":
            self._unacked_results.pop(int(msg[1]), None)

    # -- fault injection (crash / pause / recover) -----------------------------

    def crash(self) -> int:
        """Hard failure: every in-flight execution, queued task, and pending
        result retransmission is lost, and arriving task data is silently
        dropped until :meth:`recover`.  Returns the number of tasks dropped
        (in-flight + queued) so the injector can report the blast radius."""
        dropped = 0
        for handle in self._exec_handles.values():
            if not handle.fired:
                self.host.sim.cancel(handle)
            dropped += 1
        self._exec_handles.clear()
        dropped += len(self.queued)
        self.queued.clear()
        self._unacked_results.clear()
        self.running = 0
        self.alive = False
        self.paused = False
        self.crashes += 1
        self.tasks_dropped += dropped
        if self._load_timer is not None and self._load_timer.running:
            self._load_timer.stop()
        return dropped

    def pause(self) -> None:
        """Soft failure: keep accepting task data (queueing it) but start no
        new executions until :meth:`recover`.  In-flight work finishes."""
        self.paused = True

    def recover(self) -> None:
        """Return to service and drain whatever queued while paused.  After
        a crash there is nothing to drain — the queue died with the node."""
        self.alive = True
        self.paused = False
        if self._load_timer is not None and not self._load_timer.running:
            self._load_timer.start()
        while self.queued and (
            self.max_concurrent is None or self.running < self.max_concurrent
        ):
            self._start_execution(self.queued.popleft())

    # -- load reporting (compute-aware extension) ------------------------------

    @property
    def load(self) -> int:
        """Outstanding work: running + queued tasks."""
        return self.running + len(self.queued)

    def _send_load_report(self) -> None:
        assert self._load_report_addr is not None
        packet = self.host.new_packet(
            self._load_report_addr,
            protocol=PROTO_UDP,
            src_port=self.port,
            dst_port=PORT_LOAD_REPORT,
            size_bytes=HEADER_OVERHEAD + 8,
            message=("load_report", self.host.addr, self.running, len(self.queued)),
        )
        self.host.send(packet)

    def stop(self) -> None:
        if self._load_timer is not None:
            self._load_timer.stop()
