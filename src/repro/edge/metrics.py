"""Per-task measurement records and their aggregation.

The experiments report, per Table I size class:

* **transfer time** — start of the data upload until the sender holds the
  final ACK (what Fig. 7/9 call "data transfer time");
* **task completion time** — scheduler query sent until the result message
  arrives back at the device (Figs. 5/6/8's "task completion time"),
  covering query round-trip + transfer + execution + result return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ExperimentError
from repro.edge.task import SizeClass

__all__ = ["TaskRecord", "MetricsCollector"]


@dataclass
class TaskRecord:
    """Timeline of one task through the system (absolute sim times)."""

    task_id: int
    job_id: int
    device: str
    workload: str
    size_class: SizeClass
    data_bytes: int
    exec_time: float
    submitted_at: float
    server_addr: Optional[int] = None
    ranking_received_at: Optional[float] = None
    transfer_started: Optional[float] = None
    transfer_completed: Optional[float] = None
    result_received_at: Optional[float] = None
    retransmissions: int = 0
    failed: bool = False

    @property
    def complete(self) -> bool:
        return self.result_received_at is not None and not self.failed

    @property
    def transfer_time(self) -> float:
        if self.transfer_started is None or self.transfer_completed is None:
            raise ExperimentError(f"task {self.task_id}: transfer not complete")
        return self.transfer_completed - self.transfer_started

    @property
    def completion_time(self) -> float:
        if self.result_received_at is None:
            raise ExperimentError(f"task {self.task_id}: no result received")
        return self.result_received_at - self.submitted_at


class MetricsCollector:
    """Accumulates task records for one experiment run."""

    def __init__(self) -> None:
        self._records: Dict[int, TaskRecord] = {}

    def add(self, record: TaskRecord) -> None:
        if record.task_id in self._records:
            raise ExperimentError(f"duplicate record for task {record.task_id}")
        self._records[record.task_id] = record

    def get(self, task_id: int) -> TaskRecord:
        try:
            return self._records[task_id]
        except KeyError:
            raise ExperimentError(f"no record for task {task_id}") from None

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[TaskRecord]:
        return list(self._records.values())

    def completed(self) -> List[TaskRecord]:
        return [r for r in self._records.values() if r.complete]

    def failed(self) -> List[TaskRecord]:
        return [r for r in self._records.values() if r.failed]

    def all_done(self) -> bool:
        """True when every registered task finished (or failed terminally).

        A task is finished only when the device holds the result *and* the
        sender-side transfer closed: the result can overtake the transport's
        final ACK when that ACK is lost and recovered by retransmission."""
        return all(
            (r.result_received_at is not None and r.transfer_completed is not None)
            or r.failed
            for r in self._records.values()
        )

    def by_size_class(self) -> Dict[SizeClass, List[TaskRecord]]:
        out: Dict[SizeClass, List[TaskRecord]] = {}
        for record in self._records.values():
            out.setdefault(record.size_class, []).append(record)
        return out

    # -- aggregation ------------------------------------------------------

    @staticmethod
    def _mean(values: Iterable[float]) -> float:
        arr = list(values)
        if not arr:
            raise ExperimentError("no values to aggregate")
        return float(np.mean(arr))

    def mean_completion_time(self, size_class: Optional[SizeClass] = None) -> float:
        records = [
            r for r in self.completed()
            if size_class is None or r.size_class == size_class
        ]
        return self._mean(r.completion_time for r in records)

    def mean_transfer_time(self, size_class: Optional[SizeClass] = None) -> float:
        records = [
            r for r in self.completed()
            if size_class is None or r.size_class == size_class
        ]
        return self._mean(r.transfer_time for r in records)

    def completion_times(self) -> Dict[int, float]:
        """task_id -> completion time, for per-task paired comparisons (Fig. 8)."""
        return {r.task_id: r.completion_time for r in self.completed()}
