"""Workload generation: serverless and distributed-computing job streams.

Section IV: "We configured serverless computing jobs to submit one task and
distributed computing workload jobs to submit three tasks. ... Each
experiment consists of 200 tasks."

The generator **pre-materializes** the entire arrival plan (arrival times,
submitting devices, per-task sizes) from its random stream before the
simulation starts.  Policy runs that share a seed therefore submit *exactly*
the same work in the same order — the paper's paired-comparison methodology
("we used the same order when comparing different scheduling algorithms to
ensure fairness").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.edge.device import EdgeDevice
from repro.edge.task import Job, SizeClass, Task, sample_task
from repro.errors import WorkloadError
from repro.simnet.engine import Simulator

__all__ = [
    "WORKLOAD_SERVERLESS",
    "WORKLOAD_DISTRIBUTED",
    "WorkloadSpec",
    "WorkloadPlan",
    "WorkloadGenerator",
]

WORKLOAD_SERVERLESS = "serverless"
WORKLOAD_DISTRIBUTED = "distributed"

_TASKS_PER_JOB = {WORKLOAD_SERVERLESS: 1, WORKLOAD_DISTRIBUTED: 3}


@dataclass(frozen=True)
class WorkloadSpec:
    """Experiment workload parameters."""

    workload: str                   # WORKLOAD_SERVERLESS or WORKLOAD_DISTRIBUTED
    size_class: SizeClass
    total_tasks: int = 200          # paper default
    mean_interarrival: float = 3.0  # seconds between job submissions (Poisson)
    scale: float = 1.0              # Table I scale factor (1.0 = paper sizes)

    def __post_init__(self) -> None:
        if self.workload not in _TASKS_PER_JOB:
            raise WorkloadError(f"unknown workload kind {self.workload!r}")
        if self.total_tasks < 1:
            raise WorkloadError("total_tasks must be >= 1")
        if self.mean_interarrival <= 0:
            raise WorkloadError("mean_interarrival must be positive")
        if self.scale <= 0:
            raise WorkloadError("scale must be positive")

    @property
    def tasks_per_job(self) -> int:
        return _TASKS_PER_JOB[self.workload]

    @property
    def num_jobs(self) -> int:
        return math.ceil(self.total_tasks / self.tasks_per_job)


@dataclass(frozen=True)
class PlannedJob:
    arrival_time: float
    device_name: str
    task_shapes: Tuple[Tuple[int, float], ...]  # (data_bytes, exec_time)


@dataclass(frozen=True)
class WorkloadPlan:
    """A fully-materialized, policy-independent submission schedule."""

    spec: WorkloadSpec
    jobs: Tuple[PlannedJob, ...]

    @property
    def horizon(self) -> float:
        """Arrival time of the last job."""
        return self.jobs[-1].arrival_time if self.jobs else 0.0


def build_plan(
    spec: WorkloadSpec,
    device_names: Sequence[str],
    rng: np.random.Generator,
    *,
    start_time: float = 0.0,
) -> WorkloadPlan:
    """Materialize the arrival plan.  Consumes the stream in a fixed order
    (interarrival, device index, then task shapes per job)."""
    if not device_names:
        raise WorkloadError("need at least one submitting device")
    jobs: List[PlannedJob] = []
    t = start_time
    remaining = spec.total_tasks
    for _ in range(spec.num_jobs):
        t += float(rng.exponential(spec.mean_interarrival))
        device = device_names[int(rng.integers(0, len(device_names)))]
        n_tasks = min(spec.tasks_per_job, remaining)
        shapes = tuple(
            sample_task(rng, spec.size_class, scale=spec.scale) for _ in range(n_tasks)
        )
        remaining -= n_tasks
        jobs.append(PlannedJob(arrival_time=t, device_name=device, task_shapes=shapes))
    return WorkloadPlan(spec=spec, jobs=tuple(jobs))


class WorkloadGenerator:
    """Replays a :class:`WorkloadPlan` against live edge devices."""

    def __init__(
        self,
        sim: Simulator,
        devices: Dict[str, EdgeDevice],
        plan: WorkloadPlan,
        *,
        on_all_submitted: Optional[Callable[[], None]] = None,
    ) -> None:
        missing = {j.device_name for j in plan.jobs} - set(devices)
        if missing:
            raise WorkloadError(f"plan references unknown devices: {sorted(missing)}")
        self.sim = sim
        self.devices = devices
        self.plan = plan
        self.on_all_submitted = on_all_submitted
        self.jobs_submitted = 0
        self.tasks_submitted = 0

    def start(self) -> None:
        for planned in self.plan.jobs:
            self.sim.schedule_at(planned.arrival_time, self._submit, planned)

    def _submit(self, planned: PlannedJob) -> None:
        spec = self.plan.spec
        tasks = [
            Task(
                job_id=0,  # replaced below once the job id is known
                size_class=spec.size_class,
                data_bytes=data,
                exec_time=exec_time,
            )
            for data, exec_time in planned.task_shapes
        ]
        job = Job(device_name=planned.device_name, workload=spec.workload, tasks=tasks)
        for task in tasks:
            task.job_id = job.job_id
        self.devices[planned.device_name].submit_job(job)
        self.jobs_submitted += 1
        self.tasks_submitted += len(tasks)
        if self.jobs_submitted == len(self.plan.jobs) and self.on_all_submitted:
            self.on_all_submitted()
