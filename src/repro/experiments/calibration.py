"""Fig. 3 calibration: max queue depth and RTT vs egress utilization.

Reproduces the paper's Section III-C experiment: two hosts connected by one
P4 switch (h1 — s01 — h2), iperf pushing a fixed rate between them, ping
measuring RTT at 1 s intervals, probes collecting the per-100 ms maximum
queue depth from the switch registers.  "We run each bandwidth utilization
value for 300 seconds and report the average values for ping and maximum
queue length."

The resulting (utilization, mean-max-queue) pairs feed
:class:`~repro.core.estimators.QdepthUtilizationCurve` — the calibrated
queue<->utilization map the bandwidth-based ranking inverts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.stats import mean
from repro.core.estimators import QdepthUtilizationCurve
from repro.errors import ExperimentError
from repro.simnet.engine import Simulator
from repro.simnet.flows import PingApp, PingResponder, UdpCbrFlow, UdpSink
from repro.simnet.random import run_streams
from repro.simnet.topology import Network
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.telemetry.records import ProbeReport
from repro.units import mbps, ms

__all__ = ["CalibrationPoint", "run_calibration", "run_calibration_sweep", "calibration_to_curve"]

DEFAULT_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class CalibrationPoint:
    """One utilization level's measurements (one bar of Fig. 3)."""

    utilization: float        # offered load as a fraction of link capacity
    mean_max_qdepth: float    # mean of per-probing-interval max queue depths
    peak_qdepth: int          # largest single reading
    mean_rtt: float           # seconds
    rtt_samples: int
    qdepth_samples: int


def run_calibration(
    utilization: float,
    *,
    duration: float = 300.0,
    rate_bps: float = mbps(20),
    link_delay: float = ms(10),
    probing_interval: float = 0.1,
    seed: int = 0,
    profiler=None,
) -> CalibrationPoint:
    """Measure one utilization level on the dumbbell topology."""
    if not 0.0 <= utilization <= 1.2:
        raise ExperimentError(f"utilization {utilization} out of range")
    if duration <= 2.0:
        raise ExperimentError("calibration needs a few seconds of runtime")

    # Same run hygiene as the main harness: fresh id counters and seed-only
    # RNG state, so a calibration point is a pure function of its arguments
    # no matter what ran before it in this process.
    from repro.experiments.harness import reset_run_state

    reset_run_state()
    streams = run_streams(seed)
    sim = Simulator()
    if profiler is not None:
        sim.profiler = profiler
    net = Network(sim, streams)
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.attach_host("h1", "s01", fabric_rate_bps=rate_bps, delay=link_delay)
    net.attach_host("h2", "s01", fabric_rate_bps=rate_bps, delay=link_delay)
    net.finalize()

    # INT collection: probes h1 -> h2, collector at h2.
    collector = IntCollector(net.host("h2"))
    ProbeResponder(net.host("h2"), collector=collector)
    qdepth_readings: List[int] = []

    def capture(report: ProbeReport) -> None:
        # Single switch: the lone hop record is s01's egress toward h2.
        if report.records:
            qdepth_readings.append(report.records[0].max_qdepth)

    collector.subscribe(capture)
    sender = ProbeSender(net.host("h1"), [net.address_of("h2")], interval=probing_interval)
    sender.start()

    # RTT measurement (ping, 1 s interval).
    PingResponder(net.host("h2"))
    ping = PingApp(net.host("h1"), net.address_of("h2"), interval=1.0)
    ping.start()

    # iperf at the requested fraction of link capacity.
    if utilization > 0:
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"),
            net.address_of("h2"),
            rate_bps * utilization,
            rng=streams.get("iperf"),
        )
        flow.run_for(duration)

    sim.run(until=duration)

    if not qdepth_readings:
        raise ExperimentError("no queue-depth readings collected")
    return CalibrationPoint(
        utilization=utilization,
        mean_max_qdepth=mean([float(q) for q in qdepth_readings]),
        peak_qdepth=max(qdepth_readings),
        mean_rtt=ping.mean_rtt,
        rtt_samples=len(ping.rtt_samples),
        qdepth_samples=len(qdepth_readings),
    )


def run_calibration_sweep(
    levels: Sequence[float] = DEFAULT_LEVELS,
    *,
    duration: float = 300.0,
    rate_bps: float = mbps(20),
    link_delay: float = ms(10),
    probing_interval: float = 0.1,
    seed: int = 0,
    runner=None,
) -> List[CalibrationPoint]:
    """The full Fig. 3 sweep: one :class:`repro.runner.CalibrationSpec` per
    level, executed on a Runner (fresh simulation per level either way)."""
    from repro.runner import CalibrationSpec, Runner

    if runner is None:
        runner = Runner()
    base = CalibrationSpec(
        duration=duration,
        rate_bps=rate_bps,
        link_delay=link_delay,
        probing_interval=probing_interval,
        seed=seed,
    )
    runs = runner.run_grid(base, {"utilization": [float(x) for x in levels]})
    return [run.calibration_point() for run in runs]


def calibration_to_curve(points: Sequence[CalibrationPoint]) -> QdepthUtilizationCurve:
    """Turn sweep output into the estimator's queue->utilization curve."""
    pairs = [(p.utilization, p.mean_max_qdepth) for p in points]
    return QdepthUtilizationCurve.from_calibration(pairs)
