"""Reference topologies beyond the paper's Fig. 4.

The Fig. 4 pod-ring is the evaluation topology; downstream users studying
INT-driven scheduling on other shapes get ready-made builders here.  All
builders follow the same conventions as :mod:`repro.experiments.fig4_topology`:
switches named in switch-id order (consistent tie-breaking), host injection
faster than the fabric, uniform configurable link delay.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TopologyError
from repro.simnet.engine import Simulator
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms

__all__ = ["build_linear", "build_star", "build_fat_tree"]

DEFAULT_RATE = mbps(20)
DEFAULT_DELAY = ms(10)


def build_linear(
    sim: Simulator,
    streams: Optional[RandomStreams] = None,
    *,
    num_switches: int = 4,
    fabric_rate_bps: float = DEFAULT_RATE,
    link_delay: float = DEFAULT_DELAY,
) -> Tuple[Network, List[str]]:
    """A chain: h1 - s01 - s02 - ... - sNN - h2, one host per chain end plus
    one host per middle switch.  Good for hop-count-scaling studies (e.g.
    INT stack growth, per-hop latency accumulation).

    Returns ``(network, host_names)``."""
    if num_switches < 1:
        raise TopologyError("linear topology needs at least one switch")
    net = Network(sim, streams)
    switch_names = [f"s{i:02d}" for i in range(1, num_switches + 1)]
    host_names = [f"h{i}" for i in range(1, num_switches + 1)]
    for name in host_names:
        net.add_host(name)
    for name in switch_names:
        net.add_switch(name)
    for a, b in zip(switch_names, switch_names[1:]):
        net.connect(a, b, rate_bps=fabric_rate_bps, delay=link_delay)
    for host, switch in zip(host_names, switch_names):
        net.attach_host(host, switch, fabric_rate_bps=fabric_rate_bps, delay=link_delay)
    net.finalize()
    return net, host_names


def build_star(
    sim: Simulator,
    streams: Optional[RandomStreams] = None,
    *,
    num_hosts: int = 6,
    fabric_rate_bps: float = DEFAULT_RATE,
    link_delay: float = DEFAULT_DELAY,
) -> Tuple[Network, List[str]]:
    """All hosts on one switch — the Fig. 3 calibration shape generalized.
    Every host pair contends on exactly one egress port, so congestion
    effects are maximally visible and attributable."""
    if num_hosts < 2:
        raise TopologyError("star topology needs at least two hosts")
    net = Network(sim, streams)
    host_names = [f"h{i}" for i in range(1, num_hosts + 1)]
    for name in host_names:
        net.add_host(name)
    net.add_switch("s01")
    for host in host_names:
        net.attach_host(host, "s01", fabric_rate_bps=fabric_rate_bps, delay=link_delay)
    net.finalize()
    return net, host_names


def build_fat_tree(
    sim: Simulator,
    streams: Optional[RandomStreams] = None,
    *,
    pods: int = 2,
    hosts_per_leaf: int = 2,
    fabric_rate_bps: float = DEFAULT_RATE,
    link_delay: float = DEFAULT_DELAY,
) -> Tuple[Network, List[str]]:
    """A small two-level leaf/spine fabric: ``pods`` leaves per tier, two
    spines, every leaf connected to every spine (path diversity — useful
    for studying the scheduler under equal-cost ambiguity).

    Layout: spines s01, s02; leaves s03 .. s(2+pods); hosts h1.. attached
    ``hosts_per_leaf`` per leaf."""
    if pods < 1 or hosts_per_leaf < 1:
        raise TopologyError("fat tree needs >= 1 pod and >= 1 host per leaf")
    net = Network(sim, streams)
    spine_names = ["s01", "s02"]
    leaf_names = [f"s{i:02d}" for i in range(3, 3 + pods)]
    host_names = [f"h{i}" for i in range(1, pods * hosts_per_leaf + 1)]
    for name in host_names:
        net.add_host(name)
    for name in spine_names + leaf_names:
        net.add_switch(name)
    for leaf in leaf_names:
        for spine in spine_names:
            net.connect(leaf, spine, rate_bps=fabric_rate_bps, delay=link_delay)
    for i, host in enumerate(host_names):
        leaf = leaf_names[i // hosts_per_leaf]
        net.attach_host(host, leaf, fabric_rate_bps=fabric_rate_bps, delay=link_delay)
    net.finalize()
    return net, host_names
