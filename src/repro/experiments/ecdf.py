"""Fig. 8: ECDF of per-task performance gain over the nearest baseline.

Tasks are paired across policy runs by their position in the (shared,
seed-determined) workload plan: record *i* of the aware run and record *i*
of the baseline run describe the same submission — same device, same data
size, same arrival time.  The per-task gain is
``(t_baseline − t_aware) / t_baseline``; negative values are tasks the
network-aware scheduler made *slower* (the paper attributes these to
measurement jitter)."""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.stats import ecdf
from repro.errors import ExperimentError
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    ExperimentConfig,
    ExperimentResult,
)

__all__ = ["paired_gains", "gain_ecdf", "fraction_above", "run_gain_ecdf"]


def paired_gains(
    aware: ExperimentResult,
    baseline: ExperimentResult,
    *,
    measure: str = "completion",
) -> List[float]:
    """Per-task fractional gain of ``aware`` over ``baseline``."""
    a_records = aware.records_in_order
    b_records = baseline.records_in_order
    if len(a_records) != len(b_records):
        raise ExperimentError(
            f"runs are not paired: {len(a_records)} vs {len(b_records)} tasks"
        )
    gains: List[float] = []
    for ra, rb in zip(a_records, b_records):
        if ra.size_class != rb.size_class or ra.device != rb.device:
            raise ExperimentError(
                "paired records disagree on workload identity; runs used different seeds"
            )
        if not (ra.complete and rb.complete):
            continue
        if measure == "completion":
            ta, tb = ra.completion_time, rb.completion_time
        elif measure == "transfer":
            ta, tb = ra.transfer_time, rb.transfer_time
        else:
            raise ExperimentError(f"unknown measure {measure!r}")
        if tb <= 0:
            continue
        gains.append((tb - ta) / tb)
    if not gains:
        raise ExperimentError("no completed task pairs to compare")
    return gains


def run_gain_ecdf(
    base_config: ExperimentConfig,
    *,
    size_class: Optional[object] = None,
    baseline: str = POLICY_NEAREST,
    measure: str = "completion",
    runner=None,
) -> List[float]:
    """Run the paired (aware, baseline) cells on a Runner and return the
    per-task gains — the standalone Fig. 8 entry point.

    Both cells share the base config's seed (and therefore workload and
    congestion), which is exactly what makes the pairing valid.  With a
    caching runner the cells are free when a comparison already ran them."""
    from repro.runner import Runner, RunSpec

    if runner is None:
        runner = Runner()
    config = (
        base_config
        if size_class is None
        else replace(base_config, size_class=size_class)
    )
    specs = [
        RunSpec.from_config(replace(config, policy=policy))
        for policy in (POLICY_AWARE, baseline)
    ]
    aware, base = runner.run(specs)
    return paired_gains(
        aware.experiment_result(), base.experiment_result(), measure=measure
    )


def gain_ecdf(gains: List[float]) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig. 8 curve: sorted gains with cumulative task fractions."""
    return ecdf(gains)


def fraction_above(gains: List[float], threshold: float) -> float:
    """Fraction of tasks with gain strictly above ``threshold`` — the
    statistics quoted in Section IV-B (e.g. 'more than 60% of tasks
    experience 20% or higher reduction')."""
    arr = np.asarray(gains, dtype=float)
    if arr.size == 0:
        raise ExperimentError("no gains to analyse")
    return float(np.mean(arr > threshold))
