"""Fig. 9: impact of probing frequency on data transfer time.

Section IV-C evaluates probing intervals {0.1 s (default), 5 s, 10 s, 20 s,
30 s (typical SNMP)} under two background-traffic dynamics:

* **Traffic 1** — medium workload, slowly-changing congestion (three 30 s
  transfers with 30 s sleeps, 10 s stagger);
* **Traffic 2** — small workload, rapidly-changing congestion (5 s on /
  5 s off).

The paper's hypothesis — confirmed there and reproducible here — is that
longer probing intervals leave the scheduler acting on stale congestion
state, inflating transfer times, and the effect is stronger the faster the
background traffic changes."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.edge.background import TRAFFIC_1, TRAFFIC_2
from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.harness import (
    POLICY_AWARE,
    ExperimentConfig,
    ExperimentResult,
    QUICK_SCALE,
)

__all__ = ["ProbingSweepResult", "run_probing_sweep", "DEFAULT_INTERVALS", "SCENARIOS"]

DEFAULT_INTERVALS = (0.1, 5.0, 10.0, 20.0, 30.0)

# scenario name -> (traffic pattern, workload size class), per Section IV-C.
SCENARIOS = {
    "traffic1": (TRAFFIC_1, SizeClass.M),
    "traffic2": (TRAFFIC_2, SizeClass.S),
}


@dataclass
class ProbingSweepResult:
    """Mean transfer time per probing interval for one scenario."""

    scenario: str
    base_config: ExperimentConfig
    results: Dict[float, ExperimentResult] = field(default_factory=dict)

    def intervals(self) -> List[float]:
        return sorted(self.results)

    def mean_transfer_time(self, interval: float) -> float:
        try:
            return self.results[interval].mean_transfer_time()
        except KeyError:
            raise ExperimentError(f"no run for probing interval {interval}") from None

    def series(self) -> List[Tuple[float, float]]:
        """The Fig. 9 line: (probing interval, mean transfer time)."""
        return [(i, self.mean_transfer_time(i)) for i in self.intervals()]


def run_probing_sweep(
    scenario: str,
    *,
    intervals: Sequence[float] = DEFAULT_INTERVALS,
    base_config: Optional[ExperimentConfig] = None,
    seed: Optional[int] = None,
    runner=None,
) -> ProbingSweepResult:
    """Sweep probing intervals for one background scenario on a Runner.

    Probing intervals and scenario durations are used *unscaled* by default
    (time_scale = 1): Fig. 9 is about the ratio between telemetry staleness
    and congestion dynamics, which shrinking either side would distort.
    Only Table I sizes shrink in the default quick configuration.

    ``seed`` defaults to ``base_config.seed`` — it no longer silently
    overrides a caller-supplied config seed with 0."""
    if scenario not in SCENARIOS:
        raise ExperimentError(f"unknown scenario {scenario!r}; options: {sorted(SCENARIOS)}")
    traffic, size_class = SCENARIOS[scenario]
    if base_config is None:
        from repro.experiments.harness import ExperimentScale

        scale = ExperimentScale(
            size_scale=QUICK_SCALE.size_scale,
            total_tasks=QUICK_SCALE.total_tasks,
            mean_interarrival=QUICK_SCALE.mean_interarrival,
            time_scale=1.0,
        )
        base_config = ExperimentConfig(
            workload="distributed",
            metric="bandwidth",
            policy=POLICY_AWARE,
            scale=scale,
        )
    from repro.runner import Runner, RunSpec

    if runner is None:
        runner = Runner()
    base_spec = RunSpec.from_config(
        replace(
            base_config,
            scenario=traffic,
            size_class=size_class,
            seed=base_config.seed if seed is None else seed,
        )
    )
    runs = runner.run_grid(
        base_spec, {"probing_interval": [float(i) for i in intervals]}
    )
    out = ProbingSweepResult(scenario=scenario, base_config=base_config)
    for interval, run in zip(intervals, runs):
        out.results[interval] = run.experiment_result()
    return out
