"""Reproduction harnesses for every table and figure in the paper.

===========  =====================================================  =========================
Artifact     What it shows                                          Module
===========  =====================================================  =========================
Fig. 3       max queue depth & RTT vs egress utilization            :mod:`repro.experiments.calibration`
Table I      workload size classes                                  :mod:`repro.edge.task`
Fig. 5       serverless workload, delay ranking vs baselines        :mod:`repro.experiments.comparison`
Fig. 6       distributed workload, delay ranking vs baselines       :mod:`repro.experiments.comparison`
Fig. 7       distributed workload, bandwidth ranking transfer time  :mod:`repro.experiments.comparison`
Fig. 8       ECDF of per-task completion-time gain                  :mod:`repro.experiments.ecdf`
Fig. 9       probing-interval sweep under Traffic 1 / Traffic 2     :mod:`repro.experiments.probing_sweep`
===========  =====================================================  =========================
"""

from repro.experiments.fig4_topology import Fig4Topology, build_fig4_network
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentScale,
    FULL_SCALE,
    QUICK_SCALE,
    SMOKE_SCALE,
    POLICY_AWARE,
    POLICY_NEAREST,
    POLICY_RANDOM,
    run_experiment,
)
from repro.experiments.calibration import CalibrationPoint, run_calibration, run_calibration_sweep
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.ecdf import gain_ecdf, paired_gains, run_gain_ecdf
from repro.experiments.probing_sweep import ProbingSweepResult, run_probing_sweep
from repro.experiments.sensitivity import SensitivityResult, sweep_k, sweep_probing_parameter
from repro.experiments.export import (
    calibration_to_dict,
    comparison_to_dict,
    dump_json,
    result_to_dict,
    sweep_to_dict,
)

__all__ = [
    "Fig4Topology",
    "build_fig4_network",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentScale",
    "FULL_SCALE",
    "QUICK_SCALE",
    "SMOKE_SCALE",
    "POLICY_AWARE",
    "POLICY_NEAREST",
    "POLICY_RANDOM",
    "run_experiment",
    "CalibrationPoint",
    "run_calibration",
    "run_calibration_sweep",
    "ComparisonResult",
    "run_comparison",
    "gain_ecdf",
    "paired_gains",
    "run_gain_ecdf",
    "ProbingSweepResult",
    "run_probing_sweep",
    "SensitivityResult",
    "sweep_k",
    "sweep_probing_parameter",
    "calibration_to_dict",
    "comparison_to_dict",
    "dump_json",
    "result_to_dict",
    "sweep_to_dict",
]
