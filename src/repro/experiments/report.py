"""Plain-text rendering of experiment outputs — the "figures" of this
reproduction are printed tables/series matching what the paper plots."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.calibration import CalibrationPoint
from repro.experiments.comparison import ComparisonResult
from repro.experiments.probing_sweep import ProbingSweepResult

__all__ = [
    "ascii_table",
    "render_calibration",
    "render_comparison",
    "render_probing_sweep",
    "render_ecdf_points",
]


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal fixed-width table renderer."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_calibration(points: Sequence[CalibrationPoint]) -> str:
    """Fig. 3 as a table."""
    rows = [
        (
            f"{p.utilization*100:.0f}%",
            f"{p.mean_max_qdepth:.1f}",
            p.peak_qdepth,
            f"{p.mean_rtt*1e3:.1f}",
            p.qdepth_samples,
        )
        for p in points
    ]
    return ascii_table(
        ["utilization", "mean max queue (pkts)", "peak queue", "mean RTT (ms)", "samples"],
        rows,
    )


def render_comparison(result: ComparisonResult, measure: str = "completion") -> str:
    """Figs. 5/6/7 as a table (left panel = times, right panel = gain)."""
    rows = [
        (label, f"{aware:.2f}", f"{nearest:.2f}", f"{rand:.2f}", f"{gain:+.1f}%")
        for label, aware, nearest, rand, gain in result.as_rows(measure)
    ]
    return ascii_table(
        ["class", f"aware {measure} (s)", "nearest (s)", "random (s)", "gain vs nearest"],
        rows,
    )


def render_probing_sweep(results: Sequence[ProbingSweepResult]) -> str:
    """Fig. 9 as a table: one column per scenario."""
    if not results:
        return "(no sweeps)"
    intervals = results[0].intervals()
    headers = ["probing interval (s)"] + [r.scenario for r in results]
    rows = []
    for interval in intervals:
        row: List[object] = [interval]
        for sweep in results:
            row.append(f"{sweep.mean_transfer_time(interval):.2f}s")
        rows.append(row)
    return ascii_table(headers, rows)


def render_ecdf_points(
    gains: Sequence[float], thresholds: Sequence[float] = (-0.2, 0.0, 0.2, 0.4, 0.6)
) -> str:
    """Fig. 8 as the fraction of tasks at or below selected gain levels."""
    import numpy as np

    arr = np.asarray(gains, dtype=float)
    rows = [
        (f"gain <= {t*100:+.0f}%", f"{float(np.mean(arr <= t))*100:.1f}% of tasks")
        for t in thresholds
    ]
    return ascii_table(["threshold", "cumulative fraction"], rows)
