"""The experimental topology (paper Fig. 4): 8 nodes, 12 switches.

The paper's figure is not machine-readable, so the builder realizes every
property the text states:

* 12 switches connect 8 nodes;
* every link has the same 10 ms delay;
* the effective per-hop forwarding capacity is ~20 Mb/s (BMv2 bottleneck,
  Section IV / Section III-C footnote 3);
* nodes three switch-hops apart are each other's *nearest* nodes, and
  "Node 7 and Node 8 are the nearest nodes for each other";
* distinct regions of the network congest independently;
* Node 6 is the scheduler.

Realization: four pods, each one core switch plus two leaf switches with one
node per leaf; the cores form a ring.

::

        pod 1            pod 2            pod 3            pod 4
    n1   n2          n3   n4          n5   n6          n7   n8
     |    |           |    |           |    |           |    |
    s05  s06         s07  s08         s09  s10         s11  s12     (leaves)
      \\  /             \\  /            \\  /             \\  /
      s01 ----------- s02 ------------ s03 ------------ s04         (cores)
       `-----------------------------------------------'   (ring closes 4-1)

In-pod node pairs (e.g. node7 -> s11 -> s04 -> s12 -> node8) traverse exactly
three switches; cross-pod pairs traverse four or five.  Switches are named in
switch-id order (``s01`` .. ``s12``) so the control plane's lexicographic
route tie-breaking matches the scheduler's id-ordered tie-breaking on the
inferred topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simnet.engine import Simulator
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms

__all__ = ["Fig4Topology", "build_fig4_network", "FABRIC_RATE_BPS", "LINK_DELAY_S"]

FABRIC_RATE_BPS = mbps(20)   # effective BMv2 forwarding rate (paper footnote 3)
LINK_DELAY_S = ms(10)        # uniform link delay (Section IV)
NUM_PODS = 4
SCHEDULER_NODE = "node6"


@dataclass
class Fig4Topology:
    """The built network plus the experiment's role assignments."""

    network: Network
    node_names: List[str]
    scheduler_name: str
    core_names: List[str]
    leaf_names: List[str]
    fabric_rate_bps: float
    link_delay: float
    pod_of: Dict[str, int] = field(default_factory=dict)

    @property
    def worker_names(self) -> List[str]:
        """Nodes that submit and execute tasks (everyone but the scheduler)."""
        return [n for n in self.node_names if n != self.scheduler_name]

    @property
    def scheduler_addr(self) -> int:
        return self.network.address_of(self.scheduler_name)


def build_fig4_network(
    sim: Simulator,
    streams: Optional[RandomStreams] = None,
    *,
    fabric_rate_bps: float = FABRIC_RATE_BPS,
    link_delay: float = LINK_DELAY_S,
    injection_multiplier: float = 10.0,
    queue_capacity: Optional[int] = None,
    scheduler_name: str = SCHEDULER_NODE,
) -> Fig4Topology:
    """Construct and finalize the Fig. 4 network."""
    net = Network(sim, streams)
    node_names = [f"node{i}" for i in range(1, 2 * NUM_PODS + 1)]
    core_names = [f"s{i:02d}" for i in range(1, NUM_PODS + 1)]
    leaf_names = [f"s{i:02d}" for i in range(NUM_PODS + 1, 3 * NUM_PODS + 1)]

    for name in node_names:
        net.add_host(name)
    for name in core_names + leaf_names:  # cores first: switch ids 1..4
        net.add_switch(name)

    pod_of: Dict[str, int] = {}
    for pod in range(NUM_PODS):
        core = core_names[pod]
        for slot in range(2):
            leaf = leaf_names[2 * pod + slot]
            node = node_names[2 * pod + slot]
            net.connect(
                leaf, core,
                rate_bps=fabric_rate_bps, delay=link_delay,
                queue_capacity=queue_capacity,
            )
            net.attach_host(
                node, leaf,
                fabric_rate_bps=fabric_rate_bps, delay=link_delay,
                injection_multiplier=injection_multiplier,
                queue_capacity=queue_capacity,
            )
            pod_of[node] = pod + 1
    # Core ring.
    for pod in range(NUM_PODS):
        net.connect(
            core_names[pod], core_names[(pod + 1) % NUM_PODS],
            rate_bps=fabric_rate_bps, delay=link_delay,
            queue_capacity=queue_capacity,
        )
    net.finalize()

    if scheduler_name not in net.hosts:
        raise ValueError(f"scheduler {scheduler_name!r} is not one of the nodes")
    return Fig4Topology(
        network=net,
        node_names=node_names,
        scheduler_name=scheduler_name,
        core_names=core_names,
        leaf_names=leaf_names,
        fabric_rate_bps=fabric_rate_bps,
        link_delay=link_delay,
        pod_of=pod_of,
    )
