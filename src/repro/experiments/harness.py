"""End-to-end experiment harness: one policy × workload × congestion run.

``run_experiment`` assembles the full system on the Fig. 4 topology —
servers, devices, scheduler service, probing, background traffic — replays a
pre-materialized workload plan, and returns the per-task metrics.  Runs that
share a seed see byte-identical workloads and congestion timelines, so
policies can be compared task-by-task (the paper's paired methodology).

Scale presets trade fidelity for wall-clock time: ``FULL_SCALE`` is the
paper's 200-task setup (minutes of wall-clock per run); ``QUICK_SCALE``
shrinks Table I sizes and scenario durations proportionally for integration
tests and benchmarks; ``SMOKE_SCALE`` is for unit-level smoke tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.baselines import NearestScheduler, RandomScheduler
from repro.core.scheduler import (
    METRIC_BANDWIDTH,
    METRIC_DELAY,
    METRIC_RAW,
    NetworkAwareScheduler,
    SchedulerService,
)
from repro.core.estimators import QdepthUtilizationCurve
from repro.edge.background import BackgroundTraffic, DEFAULT_SCENARIO, TrafficScenario
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector, TaskRecord
from repro.edge.server import EdgeServer
from repro.edge.task import SizeClass
from repro.edge.workload import WorkloadGenerator, WorkloadSpec, build_plan
from repro.errors import ExperimentError
from repro.experiments.fig4_topology import Fig4Topology, build_fig4_network
from repro.faults import FaultInjector, FaultPlan
from repro.simnet.engine import PeriodicTimer, Simulator
from repro.simnet.flows import UdpSink, reset_flow_ids
from repro.simnet.packet import MTU, reset_packet_ids
from repro.simnet.random import RandomStreams, run_streams
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import ProbeResponder, ProbeSender

__all__ = [
    "POLICY_AWARE",
    "POLICY_NEAREST",
    "POLICY_RANDOM",
    "ExperimentScale",
    "FULL_SCALE",
    "QUICK_SCALE",
    "SMOKE_SCALE",
    "ExperimentConfig",
    "ExperimentResult",
    "reset_run_state",
    "run_experiment",
]

POLICY_AWARE = "aware"
POLICY_NEAREST = "nearest"
POLICY_RANDOM = "random"
POLICY_SNMP = "snmp"   # legacy port-counter-driven network awareness
_POLICIES = (POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM, POLICY_SNMP)

PROBE_LAYOUT_STAR = "star"
PROBE_LAYOUT_MESH = "mesh"
PROBE_LAYOUT_OPTIMIZED = "optimized"   # greedy set-cover probe routes


@dataclass(frozen=True)
class ExperimentScale:
    """Uniform shrink factor for an experiment."""

    size_scale: float       # Table I data sizes and execution times
    total_tasks: int        # tasks per run (paper: 200)
    mean_interarrival: float
    time_scale: float       # background-scenario durations

    def __post_init__(self) -> None:
        if self.size_scale <= 0 or self.time_scale <= 0:
            raise ExperimentError("scale factors must be positive")
        if self.total_tasks < 1:
            raise ExperimentError("total_tasks must be >= 1")


FULL_SCALE = ExperimentScale(size_scale=1.0, total_tasks=200, mean_interarrival=3.0, time_scale=1.0)
QUICK_SCALE = ExperimentScale(size_scale=0.2, total_tasks=36, mean_interarrival=0.8, time_scale=0.2)
SMOKE_SCALE = ExperimentScale(size_scale=0.08, total_tasks=9, mean_interarrival=0.5, time_scale=0.1)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one run."""

    policy: str = POLICY_AWARE
    metric: str = METRIC_DELAY
    workload: str = "serverless"
    size_class: SizeClass = SizeClass.S
    seed: int = 0
    scenario: TrafficScenario = DEFAULT_SCENARIO
    scale: ExperimentScale = QUICK_SCALE
    probing_interval: float = 0.1
    probe_layout: str = PROBE_LAYOUT_MESH
    probe_size: Optional[int] = None      # None: MTU for star, 256 B for mesh
    k: float = 0.020                      # queue -> latency conversion factor
    curve: Optional[QdepthUtilizationCurve] = None
    deadline_slack: Optional[float] = None
    scheduler_processing_delay: float = 0.5e-3
    snmp_poll_interval: float = 30.0      # legacy policy's counter-poll period
    # Device-side selection: "top_k" (paper mode 1) or "min_completion"
    # (paper mode 2: raw delay+bandwidth ranking + custom device policy).
    selection: str = "top_k"
    # Fault injection (repro.faults).  None keeps the run byte-identical to
    # the pre-fault harness.  With a plan, every device gets a hard task
    # deadline (so lost tasks resolve before the horizon) and, when
    # ``degradation`` is on, retry-with-failover plus scheduler quarantine
    # of stale-telemetry nodes.  ``degradation=False`` is the ablation: the
    # faults fire but nothing fights back.
    fault_plan: Optional[FaultPlan] = None
    degradation: bool = True
    task_retry_timeout: float = 4.0
    task_max_attempts: int = 4
    quarantine_ttl: float = 3.0

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ExperimentError(f"unknown policy {self.policy!r}")
        if self.metric not in (METRIC_DELAY, METRIC_BANDWIDTH, METRIC_RAW):
            raise ExperimentError(f"unknown metric {self.metric!r}")
        if self.selection not in ("top_k", "min_completion"):
            raise ExperimentError(f"unknown selection policy {self.selection!r}")
        if self.selection == "min_completion" and self.metric != METRIC_RAW:
            raise ExperimentError("min_completion selection requires metric='raw'")
        if self.metric == METRIC_RAW and self.policy != POLICY_AWARE:
            raise ExperimentError("only the network-aware scheduler serves raw rankings")
        if self.probe_layout not in (
            PROBE_LAYOUT_STAR, PROBE_LAYOUT_MESH, PROBE_LAYOUT_OPTIMIZED
        ):
            raise ExperimentError(f"unknown probe layout {self.probe_layout!r}")
        if self.probing_interval <= 0:
            raise ExperimentError("probing_interval must be positive")
        if self.task_retry_timeout <= 0:
            raise ExperimentError("task_retry_timeout must be positive")
        if self.task_max_attempts < 1:
            raise ExperimentError("task_max_attempts must be >= 1")
        if self.quarantine_ttl <= 0:
            raise ExperimentError("quarantine_ttl must be positive")


@dataclass
class ExperimentResult:
    """Output of one run."""

    config: ExperimentConfig
    metrics: MetricsCollector
    sim_time: float
    events_executed: int
    queries_served: int
    probe_reports: int
    tasks_completed: int
    tasks_failed: int
    faults_fired: int = 0
    tasks_retried: int = 0
    failovers: int = 0
    records_in_order: List[TaskRecord] = field(default_factory=list)
    # The run's observability hub (repro.obs.Observability) when one was
    # attached; None for plain (zero-overhead) runs.
    obs: Optional[object] = None

    def mean_completion_time(self, size_class: Optional[SizeClass] = None) -> float:
        return self.metrics.mean_completion_time(size_class)

    def mean_transfer_time(self, size_class: Optional[SizeClass] = None) -> float:
        return self.metrics.mean_transfer_time(size_class)


def _build_scheduler(
    config: ExperimentConfig,
    topo: Fig4Topology,
    streams: RandomStreams,
    server_addrs: List[int],
) -> SchedulerService:
    host = topo.network.host(topo.scheduler_name)
    kwargs = dict(processing_delay=config.scheduler_processing_delay)
    if config.policy == POLICY_AWARE:
        # Quarantine only arms for degraded fault runs: it changes ranking
        # behavior around stale telemetry, and fault-free runs must stay
        # byte-identical to the paper's scheduler.
        quarantine_ttl = (
            config.quarantine_ttl
            if config.fault_plan is not None and config.degradation
            else None
        )
        return NetworkAwareScheduler(
            host,
            server_addrs,
            link_capacity_bps=topo.fabric_rate_bps,
            k=config.k,
            default_link_delay=topo.link_delay,
            curve=config.curve,
            quarantine_ttl=quarantine_ttl,
            **kwargs,
        )
    if config.policy == POLICY_NEAREST:
        return NearestScheduler(host, server_addrs, topo.network, **kwargs)
    if config.policy == POLICY_SNMP:
        from repro.legacy import SnmpPoller, SnmpScheduler

        poller = SnmpPoller(
            host.sim, topo.network, poll_interval=config.snmp_poll_interval
        )
        poller.start()
        return SnmpScheduler(host, server_addrs, topo.network, poller, **kwargs)
    return RandomScheduler(host, server_addrs, streams.get("random_policy"), **kwargs)


def _setup_probing(
    config: ExperimentConfig,
    topo: Fig4Topology,
    collector: IntCollector,
) -> Tuple[List[ProbeSender], List[Tuple[str, str]]]:
    """Wire probe senders/responders per the configured layout; returns the
    senders plus the (src, dst) host-name pairs probed — the layout's
    coverage claim, which the telemetry-quality observatory checks observed
    stampings against.

    Probing runs identically for every policy so all runs carry the same
    measurement overhead (fairness across compared runs)."""
    net = topo.network
    scheduler_addr = topo.scheduler_addr
    senders: List[ProbeSender] = []
    pairs: List[Tuple[str, str]] = []
    if config.probe_layout == PROBE_LAYOUT_STAR:
        probe_size = config.probe_size if config.probe_size is not None else MTU
        ProbeResponder(net.host(topo.scheduler_name), collector=collector)
        for name in topo.worker_names:
            sender = ProbeSender(
                net.host(name),
                [scheduler_addr],
                interval=config.probing_interval,
                probe_size=probe_size,
            )
            senders.append(sender)
            pairs.append((name, topo.scheduler_name))
    elif config.probe_layout == PROBE_LAYOUT_OPTIMIZED:
        # Greedy set-cover probe routes (the paper's deferred route
        # optimization): full directed-port coverage with ~an order of
        # magnitude fewer probes than mesh.
        from repro.telemetry.coverage import greedy_probe_cover

        probe_size = config.probe_size if config.probe_size is not None else 256
        pairs = greedy_probe_cover(net)
        by_src: dict = {}
        for src, dst in pairs:
            by_src.setdefault(src, []).append(net.address_of(dst))
        for name in topo.node_names:
            host = net.host(name)
            if name == topo.scheduler_name:
                ProbeResponder(host, collector=collector)
            else:
                ProbeResponder(host, collector_addr=scheduler_addr)
            targets = by_src.get(name)
            if targets:
                sender = ProbeSender(
                    host, targets,
                    interval=config.probing_interval,
                    probe_size=probe_size,
                )
                senders.append(sender)
    else:  # mesh
        probe_size = config.probe_size if config.probe_size is not None else 256
        all_addrs = [net.address_of(n) for n in topo.node_names]
        for name in topo.node_names:
            host = net.host(name)
            if name == topo.scheduler_name:
                ProbeResponder(host, collector=collector)
            else:
                ProbeResponder(host, collector_addr=scheduler_addr)
            sender = ProbeSender(
                host,
                [a for a in all_addrs if a != host.addr],
                interval=config.probing_interval,
                probe_size=probe_size,
            )
            senders.append(sender)
            pairs.extend(
                (name, other) for other in topo.node_names if other != name
            )
    for sender in senders:
        sender.start()
    return senders, pairs


def reset_run_state() -> None:
    """Restart every process-global id counter (tasks, jobs, flows, packets,
    scheduler requests) so a run's output depends only on its configuration,
    never on how many runs preceded it in the process.  Called at the top of
    every experiment run; the runner's content-addressed cache and its
    serial-vs-parallel byte-identity guarantee both rest on this."""
    from repro.core.client import reset_request_ids
    from repro.edge.task import reset_ids

    reset_ids()
    reset_flow_ids()
    reset_packet_ids()
    reset_request_ids()


def run_experiment(config: ExperimentConfig, *, obs=None, profiler=None) -> ExperimentResult:
    """Run one complete experiment and return its metrics.

    ``obs`` (a :class:`repro.obs.Observability`) enables the observability
    layer for this run: sim-time metrics, structured events, a scheduler
    decision audit with ground truth attached, and task-lifecycle mirroring.
    When the hub has a :class:`~repro.obs.tracing.SpanTracer` attached,
    causal spans are assembled for tasks, sampled probes, and scheduler
    decisions.  ``profiler`` (a :class:`~repro.simnet.engine.EngineProfiler`)
    collects the per-event-type hot-path profile of this run.
    """
    reset_run_state()
    streams = run_streams(config.seed)
    sim = Simulator()
    if profiler is not None:
        sim.profiler = profiler
    if obs:
        obs.bind_sim(sim)
    topo = build_fig4_network(sim, streams)
    net = topo.network
    if obs:
        obs.attach_network(net)
        if getattr(obs, "trace", None) is not None:
            # Per-hop INT stamping spans reuse PacketTracer hop events over
            # exactly the trace-sampled probes.
            from repro.simnet.trace import PacketTracer

            obs.trace.packet_tracer = PacketTracer(
                list(net.hosts.values()) + list(net.switches.values()),
                predicate=obs.trace.probe_predicate(),
            )

    worker_names = topo.worker_names
    server_addrs = [net.address_of(n) for n in worker_names]

    # Edge servers + iperf sinks everywhere.
    for name in topo.node_names:
        UdpSink(net.host(name))
    servers: Dict[str, EdgeServer] = {
        name: EdgeServer(net.host(name)) for name in worker_names
    }

    scheduler = _build_scheduler(config, topo, streams, server_addrs)
    if isinstance(scheduler, NetworkAwareScheduler):
        collector = scheduler.collector
    else:
        # Baselines ignore telemetry but the collection runs anyway so all
        # policies pay the same probing cost.
        collector = IntCollector(net.host(topo.scheduler_name))
    _senders, probe_pairs = _setup_probing(config, topo, collector)
    telquality = getattr(obs, "telquality", None) if obs else None
    if telquality is not None:
        telquality.configure(
            layout=config.probe_layout,
            pairs=probe_pairs,
            probing_interval=config.probing_interval,
        )
    whatif = getattr(obs, "whatif", None) if obs else None
    if whatif is not None:
        whatif.configure(probing_interval=config.probing_interval)

    # Workload plan (policy-independent given the seed).
    spec = WorkloadSpec(
        workload=config.workload,
        size_class=config.size_class,
        total_tasks=config.scale.total_tasks,
        mean_interarrival=config.scale.mean_interarrival,
        scale=config.scale.size_scale,
    )
    plan = build_plan(spec, worker_names, streams.get("workload"), start_time=1.0)

    slack = config.deadline_slack
    if slack is None:
        slack = 30.0 + 500.0 * config.scale.size_scale
    horizon = plan.horizon + slack

    metrics = MetricsCollector()
    if config.selection == "min_completion":
        from repro.edge.policies import min_completion_time as selection_policy
    else:
        from repro.edge.policies import top_k as selection_policy
    device_kwargs: Dict[str, object] = {}
    if config.fault_plan is not None:
        # Lost tasks must resolve before the horizon even with degradation
        # off — the hard deadline is the slack budget itself.
        device_kwargs["task_timeout"] = slack
        if config.degradation:
            device_kwargs["retry_timeout"] = config.task_retry_timeout
            device_kwargs["max_attempts"] = config.task_max_attempts
    devices: Dict[str, EdgeDevice] = {
        name: EdgeDevice(
            net.host(name), topo.scheduler_addr, metrics,
            metric=config.metric, selection_policy=selection_policy,
            **device_kwargs,
        )
        for name in worker_names
    }
    generator = WorkloadGenerator(sim, devices, plan)
    generator.start()

    # Fault injection: armed before the run so t=0 events are schedulable.
    injector: Optional[FaultInjector] = None
    if config.fault_plan is not None:
        injector = FaultInjector(
            sim, net, config.fault_plan,
            servers=servers,
            rng=streams.get("faults"),
        )
        injector.arm()

    # Background congestion (policy-independent given the seed).
    background = BackgroundTraffic(
        sim,
        {n: net.host(n) for n in topo.node_names},
        {n: net.address_of(n) for n in topo.node_names},
        config.scenario.scaled(config.scale.time_scale),
        streams.get("background"),
        link_capacity_bps=topo.fabric_rate_bps,
        horizon=horizon,
    )
    background.start()

    # Periodic state sampling + health rules (opt-in via the hub's
    # sample_interval).  The sampler event only *reads* simulation state, so
    # enabling it cannot perturb task outcomes.
    if obs and getattr(obs, "timeseries", None) is not None:
        obs.attach_experiment_samplers(
            servers=servers,
            collector=collector,
            store=getattr(scheduler, "store", None),
            probing_interval=config.probing_interval,
        )
        sampler = PeriodicTimer(
            sim, obs.timeseries.interval, obs.sample_tick, sim
        )
        sampler.start()

    # Stop as soon as every task completed (or failed).
    def check_done() -> None:
        if generator.jobs_submitted == len(plan.jobs) and metrics.all_done():
            sim.stop()

    watchdog = PeriodicTimer(sim, 0.25, check_done)
    watchdog.start()

    sim.run(until=horizon)

    if not metrics.all_done():
        incomplete = sum(
            1 for r in metrics.records if r.result_received_at is None and not r.failed
        )
        raise ExperimentError(
            f"experiment hit the {horizon:.0f}s deadline with {incomplete} "
            f"unfinished tasks (policy={config.policy}, class={config.size_class.label})"
        )

    if obs:
        _mirror_task_lifecycle(obs, metrics.records)
        if getattr(obs, "trace", None) is not None:
            obs.trace.assemble(metrics.records)
        obs.metrics.gauge("run_sim_time_seconds").set(sim.now)
        obs.metrics.gauge("run_events_executed").set(sim.events_executed)
        obs.metrics.gauge("run_tasks_completed").set(len(metrics.completed()))
        obs.metrics.gauge("run_tasks_failed").set(len(metrics.failed()))

    return ExperimentResult(
        config=config,
        metrics=metrics,
        sim_time=sim.now,
        events_executed=sim.events_executed,
        queries_served=scheduler.queries_served,
        probe_reports=collector.reports_ingested,
        tasks_completed=len(metrics.completed()),
        tasks_failed=len(metrics.failed()),
        faults_fired=len(injector.fired) if injector is not None else 0,
        tasks_retried=sum(d.tasks_retried for d in devices.values()),
        failovers=sum(d.failovers for d in devices.values()),
        records_in_order=metrics.records,
        obs=obs if obs else None,
    )


def _mirror_task_lifecycle(obs, records: List[TaskRecord]) -> None:
    """Replay each task's recorded timeline into the structured event log.

    Timestamps come from the :class:`TaskRecord` fields measured during the
    run (the ``time=`` override), so the mirrored events interleave correctly
    with live-emitted ones on export."""
    for r in records:
        common = dict(device=r.device, server_addr=r.server_addr)
        obs.events.task_transition(
            task_id=r.task_id, state="submitted", time=r.submitted_at, **common
        )
        if r.ranking_received_at is not None:
            obs.events.task_transition(
                task_id=r.task_id, state="ranking_received",
                time=r.ranking_received_at, **common,
            )
        if r.transfer_started is not None:
            obs.events.task_transition(
                task_id=r.task_id, state="transfer_started",
                time=r.transfer_started, **common,
            )
        if r.transfer_completed is not None:
            obs.events.task_transition(
                task_id=r.task_id, state="transfer_completed",
                time=r.transfer_completed, **common,
            )
        if r.failed:
            obs.events.task_transition(
                task_id=r.task_id, state="failed", time=None, **common
            )
        elif r.result_received_at is not None:
            obs.events.task_transition(
                task_id=r.task_id, state="result_received",
                time=r.result_received_at, **common,
            )
        if r.complete:
            obs.metrics.histogram(
                "task_completion_seconds",
                buckets=(0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0),
                size_class=r.size_class.label,
            ).observe(r.completion_time)
