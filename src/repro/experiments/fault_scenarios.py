"""Fault-scenario experiments: how schedulers behave when the network lies.

The paper's evaluation assumes telemetry keeps flowing and edge servers keep
running.  This harness measures what happens when they don't: a
:class:`~repro.faults.plan.FaultPlan` (built-in scenario or JSON file) runs
against the Fig. 4 topology, once per policy, with graceful degradation on
and — as the ablation — off.  Runs share seeds, so rows are paired the same
way the Fig. 5 comparisons are.

The headline table answers two questions per policy:

* **survival** — what fraction of tasks still completes under the fault;
* **degradation value** — how many of those completions the retry/failover +
  quarantine machinery is responsible for (the delta to the ablation row).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.errors import ExperimentError, FaultError
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    POLICY_AWARE,
    POLICY_NEAREST,
    QUICK_SCALE,
    run_experiment,
)
from repro.faults import BUILTIN_SCENARIOS, FaultPlan, builtin_plan

__all__ = [
    "FaultScenarioRow",
    "resolve_plan",
    "run_fault_scenario",
    "compare_degradation",
    "render_fault_comparison",
    "assert_survival",
]


def resolve_plan(spec: str) -> FaultPlan:
    """A plan from a built-in scenario name, or from a JSON file when
    ``spec`` doesn't name one (the CLI's ``--faults`` argument)."""
    if spec in BUILTIN_SCENARIOS:
        return builtin_plan(spec)
    try:
        return FaultPlan.load(spec)
    except OSError as exc:
        raise FaultError(
            f"{spec!r} is neither a built-in scenario "
            f"({', '.join(sorted(BUILTIN_SCENARIOS))}) nor a readable "
            f"plan file: {exc}"
        ) from exc


@dataclass(frozen=True)
class FaultScenarioRow:
    """One (policy, degradation) cell of the comparison."""

    policy: str
    degradation: bool
    tasks_completed: int
    tasks_failed: int
    tasks_retried: int
    failovers: int
    faults_fired: int
    mean_completion: Optional[float]

    @property
    def total(self) -> int:
        return self.tasks_completed + self.tasks_failed

    @property
    def completion_rate(self) -> float:
        return self.tasks_completed / self.total if self.total else 0.0


def run_fault_scenario(
    plan: FaultPlan,
    *,
    policy: str = POLICY_AWARE,
    degradation: bool = True,
    base_config: Optional[ExperimentConfig] = None,
    obs=None,
) -> ExperimentResult:
    """One policy × degradation run under ``plan``."""
    base = base_config if base_config is not None else ExperimentConfig(scale=QUICK_SCALE)
    config = replace(
        base, policy=policy, fault_plan=plan, degradation=degradation
    )
    return run_experiment(config, obs=obs)


def _row(result: ExperimentResult) -> FaultScenarioRow:
    completed = result.metrics.completed()
    mean = (
        result.metrics.mean_completion_time() if completed else None
    )
    return FaultScenarioRow(
        policy=result.config.policy,
        degradation=result.config.degradation,
        tasks_completed=result.tasks_completed,
        tasks_failed=result.tasks_failed,
        tasks_retried=result.tasks_retried,
        failovers=result.failovers,
        faults_fired=result.faults_fired,
        mean_completion=mean,
    )


def compare_degradation(
    plan: FaultPlan,
    *,
    policies: Sequence[str] = (POLICY_AWARE, POLICY_NEAREST),
    base_config: Optional[ExperimentConfig] = None,
    runner=None,
) -> List[FaultScenarioRow]:
    """The scenario's full grid: every policy, degradation on and off,
    identical seed/workload/congestion across all cells.  Executes on a
    :class:`repro.runner.Runner` (serial by default); the fault plan rides
    inside each spec by contents, so cached cells invalidate when the plan
    is edited."""
    from repro.runner import Runner, RunSpec

    if runner is None:
        runner = Runner()
    base = base_config if base_config is not None else ExperimentConfig(scale=QUICK_SCALE)
    cells = [(p, d) for p in policies for d in (True, False)]
    specs = [
        RunSpec.from_config(
            replace(base, policy=policy, fault_plan=plan, degradation=degradation)
        )
        for policy, degradation in cells
    ]
    return [_row(run.experiment_result()) for run in runner.run(specs)]


def render_fault_comparison(plan: FaultPlan, rows: Sequence[FaultScenarioRow]) -> str:
    """Plain-text table in the house style of ``experiments.report``."""
    header = (
        "policy  | degr. | completed | failed | retries | failovers | mean (s)"
    )
    sep = "--------+-------+-----------+--------+---------+-----------+---------"
    lines = [f"scenario: {plan.name} — {plan.description}", header, sep]
    for row in rows:
        mean = f"{row.mean_completion:.2f}" if row.mean_completion is not None else "-"
        lines.append(
            f"{row.policy:<7} | {'on' if row.degradation else 'off':<5} | "
            f"{row.tasks_completed:>4}/{row.total:<4} | {row.tasks_failed:>6} | "
            f"{row.tasks_retried:>7} | {row.failovers:>9} | {mean:>7}"
        )
    return "\n".join(lines)


def assert_survival(
    rows: Sequence[FaultScenarioRow], *, policy: str, min_rate: float
) -> None:
    """CI guard: the degraded run of ``policy`` must complete at least
    ``min_rate`` of its tasks, or the scenario run is considered broken."""
    for row in rows:
        if row.policy == policy and row.degradation:
            if row.completion_rate < min_rate:
                raise ExperimentError(
                    f"{policy} completed only {row.completion_rate:.0%} of "
                    f"tasks under faults (required {min_rate:.0%})"
                )
            return
    raise ExperimentError(f"no degraded {policy!r} row in the comparison")
