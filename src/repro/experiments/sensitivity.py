"""Parameter-sensitivity sweeps for the scheduler's knobs.

The paper fixes k = 20 ms by inspection and "leave[s] its automation and
fine-tuning as a future work"; the telemetry staleness window and the
queue-depth noise floor are implementation parameters this reproduction
introduces.  This harness quantifies how sensitive the headline result
(gain of network-aware over nearest) is to each knob, holding workload and
congestion fixed via the usual paired-seed machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    QUICK_SCALE,
    ExperimentConfig,
    ExperimentResult,
)

__all__ = ["SensitivityResult", "sweep_k", "sweep_probing_parameter"]


@dataclass
class SensitivityResult:
    """Gain of aware-over-nearest per parameter value."""

    parameter: str
    base_config: ExperimentConfig
    nearest: Optional[ExperimentResult] = None
    runs: Dict[float, ExperimentResult] = field(default_factory=dict)

    def gain_percent(self, value: float, measure: str = "completion") -> float:
        run = self.runs.get(value)
        if run is None:
            raise ExperimentError(f"no run for {self.parameter}={value}")
        if measure == "completion":
            aware_t = run.mean_completion_time()
            nearest_t = self.nearest.mean_completion_time()
        elif measure == "transfer":
            aware_t = run.mean_transfer_time()
            nearest_t = self.nearest.mean_transfer_time()
        else:
            raise ExperimentError(f"unknown measure {measure!r}")
        return 100.0 * (nearest_t - aware_t) / nearest_t

    def series(self, measure: str = "completion") -> List[Tuple[float, float]]:
        return [(v, self.gain_percent(v, measure)) for v in sorted(self.runs)]

    def best_value(self, measure: str = "completion") -> float:
        return max(self.series(measure), key=lambda item: item[1])[0]


def _default_config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        workload="serverless",
        metric="delay",
        size_class=SizeClass.S,
        scale=QUICK_SCALE,
        seed=seed,
    )


def _sweep(
    parameter: str,
    values: Sequence[float],
    base_config: ExperimentConfig,
    runner,
) -> SensitivityResult:
    """One nearest baseline + one aware run per value, all on the Runner.

    The baseline is spec [0] and rides in the same batch as the sweep, so a
    parallel runner overlaps it with the aware runs and a caching runner
    shares it across sweeps of different parameters."""
    from repro.runner import Runner, RunSpec

    if runner is None:
        runner = Runner()
    specs = [RunSpec.from_config(replace(base_config, policy=POLICY_NEAREST))]
    specs.extend(
        RunSpec.from_config(
            replace(base_config, policy=POLICY_AWARE, **{parameter: value})
        )
        for value in values
    )
    runs = runner.run(specs)
    result = SensitivityResult(parameter=parameter, base_config=base_config)
    result.nearest = runs[0].experiment_result()
    for value, run in zip(values, runs[1:]):
        result.runs[value] = run.experiment_result()
    return result


def sweep_k(
    values: Sequence[float] = (0.0, 0.005, 0.020, 0.080),
    *,
    base_config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    runner=None,
) -> SensitivityResult:
    """Sweep Algorithm 1's queue->latency conversion factor.

    k = 0 disables congestion avoidance entirely; very large k makes any
    queue blip out-weigh real path-length differences."""
    if base_config is None:
        base_config = _default_config(seed)
    for value in values:
        if value < 0:
            raise ExperimentError(f"k must be >= 0, got {value}")
    return _sweep("k", values, base_config, runner)


def sweep_probing_parameter(
    parameter: str,
    values: Sequence[float],
    *,
    base_config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    runner=None,
) -> SensitivityResult:
    """Generic sweep over any numeric ExperimentConfig field (e.g.
    ``probing_interval``) against the shared nearest baseline."""
    if base_config is None:
        base_config = _default_config(seed)
    if not hasattr(base_config, parameter):
        raise ExperimentError(f"unknown config field {parameter!r}")
    return _sweep(parameter, values, base_config, runner)
