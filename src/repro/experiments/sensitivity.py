"""Parameter-sensitivity sweeps for the scheduler's knobs.

The paper fixes k = 20 ms by inspection and "leave[s] its automation and
fine-tuning as a future work"; the telemetry staleness window and the
queue-depth noise floor are implementation parameters this reproduction
introduces.  This harness quantifies how sensitive the headline result
(gain of network-aware over nearest) is to each knob, holding workload and
congestion fixed via the usual paired-seed machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    QUICK_SCALE,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

__all__ = ["SensitivityResult", "sweep_k", "sweep_probing_parameter"]


@dataclass
class SensitivityResult:
    """Gain of aware-over-nearest per parameter value."""

    parameter: str
    base_config: ExperimentConfig
    nearest: ExperimentResult = None
    runs: Dict[float, ExperimentResult] = field(default_factory=dict)

    def gain_percent(self, value: float, measure: str = "completion") -> float:
        run = self.runs.get(value)
        if run is None:
            raise ExperimentError(f"no run for {self.parameter}={value}")
        if measure == "completion":
            aware_t = run.mean_completion_time()
            nearest_t = self.nearest.mean_completion_time()
        elif measure == "transfer":
            aware_t = run.mean_transfer_time()
            nearest_t = self.nearest.mean_transfer_time()
        else:
            raise ExperimentError(f"unknown measure {measure!r}")
        return 100.0 * (nearest_t - aware_t) / nearest_t

    def series(self, measure: str = "completion") -> List[Tuple[float, float]]:
        return [(v, self.gain_percent(v, measure)) for v in sorted(self.runs)]

    def best_value(self, measure: str = "completion") -> float:
        return max(self.series(measure), key=lambda item: item[1])[0]


def _default_config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        workload="serverless",
        metric="delay",
        size_class=SizeClass.S,
        scale=QUICK_SCALE,
        seed=seed,
    )


def sweep_k(
    values: Sequence[float] = (0.0, 0.005, 0.020, 0.080),
    *,
    base_config: ExperimentConfig = None,
    seed: int = 0,
) -> SensitivityResult:
    """Sweep Algorithm 1's queue->latency conversion factor.

    k = 0 disables congestion avoidance entirely; very large k makes any
    queue blip out-weigh real path-length differences."""
    if base_config is None:
        base_config = _default_config(seed)
    result = SensitivityResult(parameter="k", base_config=base_config)
    result.nearest = run_experiment(replace(base_config, policy=POLICY_NEAREST))
    for value in values:
        if value < 0:
            raise ExperimentError(f"k must be >= 0, got {value}")
        result.runs[value] = run_experiment(
            replace(base_config, policy=POLICY_AWARE, k=value)
        )
    return result


def sweep_probing_parameter(
    parameter: str,
    values: Sequence[float],
    *,
    base_config: ExperimentConfig = None,
    seed: int = 0,
) -> SensitivityResult:
    """Generic sweep over any numeric ExperimentConfig field (e.g.
    ``probing_interval``) against the shared nearest baseline."""
    if base_config is None:
        base_config = _default_config(seed)
    if not hasattr(base_config, parameter):
        raise ExperimentError(f"unknown config field {parameter!r}")
    result = SensitivityResult(parameter=parameter, base_config=base_config)
    result.nearest = run_experiment(replace(base_config, policy=POLICY_NEAREST))
    for value in values:
        result.runs[value] = run_experiment(
            replace(base_config, policy=POLICY_AWARE, **{parameter: value})
        )
    return result
