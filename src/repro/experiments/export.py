"""Machine-readable export of experiment results.

Experiments print text tables for humans; downstream analysis (notebooks,
regression tracking, plotting elsewhere) wants structured data.  These
functions flatten result objects into JSON-serializable dictionaries —
every value is a str/int/float/bool/list/dict, checked by tests.

The flattening is a *round trip*: ``result_from_dict`` rebuilds a full
:class:`ExperimentResult` (real :class:`TaskRecord` objects inside a real
:class:`MetricsCollector`) from the dictionary, which is how the parallel
runner ships results across process boundaries and how cached results come
back off disk without re-running anything.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.edge.metrics import MetricsCollector, TaskRecord
from repro.edge.task import SizeClass
from repro.experiments.calibration import CalibrationPoint
from repro.experiments.comparison import ComparisonResult
from repro.experiments.harness import ExperimentConfig, ExperimentResult
from repro.experiments.probing_sweep import ProbingSweepResult

__all__ = [
    "config_to_dict",
    "task_record_to_dict",
    "task_record_from_dict",
    "result_to_dict",
    "result_from_dict",
    "comparison_to_dict",
    "calibration_to_dict",
    "sweep_to_dict",
    "dump_json",
]

_SIZE_CLASSES = {c.label: c for c in SizeClass}


def config_to_dict(config: ExperimentConfig) -> Dict[str, Any]:
    return {
        "policy": config.policy,
        "metric": config.metric,
        "workload": config.workload,
        "size_class": config.size_class.label,
        "seed": config.seed,
        "scenario": config.scenario.name,
        "total_tasks": config.scale.total_tasks,
        "size_scale": config.scale.size_scale,
        "mean_interarrival": config.scale.mean_interarrival,
        "time_scale": config.scale.time_scale,
        "probing_interval": config.probing_interval,
        "probe_layout": config.probe_layout,
        "k": config.k,
        "selection": config.selection,
    }


def task_record_to_dict(record: TaskRecord) -> Dict[str, Any]:
    return {
        "task_id": record.task_id,
        "job_id": record.job_id,
        "device": record.device,
        "workload": record.workload,
        "size_class": record.size_class.label,
        "data_bytes": record.data_bytes,
        "exec_time": record.exec_time,
        "server_addr": record.server_addr,
        "submitted_at": record.submitted_at,
        "ranking_received_at": record.ranking_received_at,
        "transfer_started": record.transfer_started,
        "transfer_completed": record.transfer_completed,
        "result_received_at": record.result_received_at,
        "retransmissions": record.retransmissions,
        "failed": record.failed,
        "completion_time": record.completion_time if record.complete else None,
        "transfer_time": (
            record.transfer_time
            if record.transfer_started is not None
            and record.transfer_completed is not None
            else None
        ),
    }


def task_record_from_dict(data: Dict[str, Any]) -> TaskRecord:
    """Rebuild a :class:`TaskRecord` from :func:`task_record_to_dict` output."""
    return TaskRecord(
        task_id=data["task_id"],
        job_id=data["job_id"],
        device=data["device"],
        workload=data["workload"],
        size_class=_SIZE_CLASSES[data["size_class"]],
        data_bytes=data["data_bytes"],
        exec_time=data["exec_time"],
        submitted_at=data["submitted_at"],
        server_addr=data.get("server_addr"),
        ranking_received_at=data.get("ranking_received_at"),
        transfer_started=data.get("transfer_started"),
        transfer_completed=data.get("transfer_completed"),
        result_received_at=data.get("result_received_at"),
        retransmissions=data.get("retransmissions", 0),
        failed=data.get("failed", False),
    )


def result_to_dict(result: ExperimentResult, *, include_tasks: bool = True) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "config": config_to_dict(result.config),
        "sim_time": result.sim_time,
        "events_executed": result.events_executed,
        "queries_served": result.queries_served,
        "probe_reports": result.probe_reports,
        "tasks_completed": result.tasks_completed,
        "tasks_failed": result.tasks_failed,
        "faults_fired": result.faults_fired,
        "tasks_retried": result.tasks_retried,
        "failovers": result.failovers,
        "mean_completion_time": result.mean_completion_time(),
        "mean_transfer_time": result.mean_transfer_time(),
    }
    if include_tasks:
        out["tasks"] = [task_record_to_dict(r) for r in result.records_in_order]
    return out


def result_from_dict(
    data: Dict[str, Any], config: ExperimentConfig
) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output.

    ``config`` supplies the full configuration (the exported ``config`` block
    is a lossy summary).  The rebuilt result carries real task records inside
    a real collector, so every downstream consumer — per-class means, ECDF
    pairing, fault-survival rows — works on it unchanged.  ``obs`` is always
    ``None``: live observability hubs do not survive serialization (their
    records ride separately in the runner payload)."""
    metrics = MetricsCollector()
    for task in data.get("tasks", ()):
        metrics.add(task_record_from_dict(task))
    return ExperimentResult(
        config=config,
        metrics=metrics,
        sim_time=data["sim_time"],
        events_executed=data["events_executed"],
        queries_served=data["queries_served"],
        probe_reports=data["probe_reports"],
        tasks_completed=data["tasks_completed"],
        tasks_failed=data["tasks_failed"],
        faults_fired=data.get("faults_fired", 0),
        tasks_retried=data.get("tasks_retried", 0),
        failovers=data.get("failovers", 0),
        records_in_order=metrics.records,
        obs=None,
    )


def comparison_to_dict(comparison: ComparisonResult) -> Dict[str, Any]:
    cells: List[Dict[str, Any]] = []
    for (size_class, policy), result in sorted(
        comparison.results.items(), key=lambda kv: (kv[0][0].label, kv[0][1])
    ):
        cells.append(
            {
                "size_class": size_class.label,
                "policy": policy,
                "mean_completion_time": result.mean_completion_time(size_class),
                "mean_transfer_time": result.mean_transfer_time(size_class),
            }
        )
    return {
        "base_config": config_to_dict(comparison.base_config),
        "cells": cells,
        "gains_vs_nearest_percent": {
            sc.label: comparison.gain_percent(sc) for sc in comparison.size_classes()
        },
    }


def calibration_to_dict(points: List[CalibrationPoint]) -> Dict[str, Any]:
    return {
        "points": [
            {
                "utilization": p.utilization,
                "mean_max_qdepth": p.mean_max_qdepth,
                "peak_qdepth": p.peak_qdepth,
                "mean_rtt": p.mean_rtt,
                "rtt_samples": p.rtt_samples,
                "qdepth_samples": p.qdepth_samples,
            }
            for p in points
        ]
    }


def sweep_to_dict(sweep: ProbingSweepResult) -> Dict[str, Any]:
    return {
        "scenario": sweep.scenario,
        "series": [
            {"probing_interval": interval, "mean_transfer_time": value}
            for interval, value in sweep.series()
        ],
    }


def dump_json(payload: Dict[str, Any], path: str) -> None:
    """Write (and round-trip-validate) a result dictionary as JSON."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    json.loads(text)  # defensive: everything must be JSON-native
    with open(path, "w") as fh:
        fh.write(text + "\n")
