"""Policy comparisons: the Figs. 5, 6, and 7 experiments.

Each figure compares the network-aware scheduler against the Nearest and
Random baselines across the four Table I size classes:

* Fig. 5 — serverless workload, delay-based ranking, task completion time;
* Fig. 6 — distributed workload, delay-based ranking, task completion time;
* Fig. 7 — distributed workload, bandwidth-based ranking, transfer time.

Runs within one size class share a seed, so the workload and congestion are
identical across policies and the paper's "performance gain" bars —
``(baseline − aware) / baseline`` — are computed on paired populations.

The grid itself executes on :class:`repro.runner.Runner`: pass ``runner=``
to fan the cells out over worker processes or to reuse cached results —
the cells are independent, and payloads are byte-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    POLICY_RANDOM,
    ExperimentConfig,
    ExperimentResult,
)

__all__ = ["ComparisonResult", "run_comparison", "FIG5_CONFIG", "FIG6_CONFIG", "FIG7_CONFIG"]

ALL_CLASSES = (SizeClass.VS, SizeClass.S, SizeClass.M, SizeClass.L)
DEFAULT_POLICIES = (POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM)

# Base configurations for the three figures (size_class is swept).
FIG5_CONFIG = ExperimentConfig(workload="serverless", metric="delay")
FIG6_CONFIG = ExperimentConfig(workload="distributed", metric="delay")
FIG7_CONFIG = ExperimentConfig(workload="distributed", metric="bandwidth")


@dataclass
class ComparisonResult:
    """All runs of one figure: results keyed by (size class, policy)."""

    base_config: ExperimentConfig
    results: Dict[Tuple[SizeClass, str], ExperimentResult] = field(default_factory=dict)
    # Observability records captured by the cells (empty unless obs_labels
    # was given): hubs live in worker processes, so their records ride here
    # instead of on ExperimentResult.obs.
    obs_records: List[Dict[str, Any]] = field(default_factory=list)

    def result(self, size_class: SizeClass, policy: str) -> ExperimentResult:
        try:
            return self.results[(size_class, policy)]
        except KeyError:
            raise ExperimentError(
                f"no run for ({size_class.label}, {policy})"
            ) from None

    def size_classes(self) -> List[SizeClass]:
        return sorted({k[0] for k in self.results}, key=lambda c: c.label)

    # -- figure panels -------------------------------------------------------

    def mean_time(
        self, size_class: SizeClass, policy: str, measure: str = "completion"
    ) -> float:
        res = self.result(size_class, policy)
        if measure == "completion":
            return res.mean_completion_time(size_class)
        if measure == "transfer":
            return res.mean_transfer_time(size_class)
        raise ExperimentError(f"unknown measure {measure!r}")

    def gain_percent(
        self,
        size_class: SizeClass,
        *,
        baseline: str = POLICY_NEAREST,
        measure: str = "completion",
    ) -> float:
        """The figures' right panel: percent reduction of the mean metric
        achieved by the network-aware scheduler over ``baseline``."""
        aware = self.mean_time(size_class, POLICY_AWARE, measure)
        base = self.mean_time(size_class, baseline, measure)
        if base <= 0:
            raise ExperimentError("baseline mean is non-positive")
        return 100.0 * (base - aware) / base

    def as_rows(self, measure: str = "completion") -> List[Tuple[str, float, float, float, float]]:
        """(class, aware, nearest, random, gain-vs-nearest %) per size class."""
        rows = []
        for sc in self.size_classes():
            aware = self.mean_time(sc, POLICY_AWARE, measure)
            nearest = self.mean_time(sc, POLICY_NEAREST, measure)
            random_ = (
                self.mean_time(sc, POLICY_RANDOM, measure)
                if (sc, POLICY_RANDOM) in self.results
                else float("nan")
            )
            rows.append((sc.label, aware, nearest, random_, self.gain_percent(sc, measure=measure)))
        return rows


def run_comparison(
    base_config: ExperimentConfig,
    *,
    size_classes: Sequence[SizeClass] = ALL_CLASSES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    obs_labels: Optional[Callable[[ExperimentConfig], Dict[str, Any]]] = None,
    runner: Optional[Any] = None,
) -> ComparisonResult:
    """Run every (size class × policy) cell of one figure on a Runner.

    ``runner`` defaults to a fresh serial :class:`repro.runner.Runner`; pass
    one configured with ``jobs``/``cache`` to parallelize or reuse results.
    ``obs_labels(config)`` — when given — returns the run-label dict for
    that cell's observability hub; the hub lives in the worker and its
    records come back on :attr:`ComparisonResult.obs_records`.
    """
    from repro.runner import Runner, RunSpec

    if runner is None:
        runner = Runner()
    cells = [(sc, policy) for sc in size_classes for policy in policies]
    specs = []
    for size_class, policy in cells:
        config = replace(base_config, size_class=size_class, policy=policy)
        specs.append(
            RunSpec.from_config(
                config,
                obs_run=obs_labels(config) if obs_labels is not None else None,
            )
        )
    out = ComparisonResult(base_config=base_config)
    for (size_class, policy), run in zip(cells, runner.run(specs)):
        out.results[(size_class, policy)] = run.experiment_result()
        out.obs_records.extend(run.obs_records())
    return out
