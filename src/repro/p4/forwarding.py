"""Plain L3 forwarding program — the non-telemetry baseline data plane.

Matches the destination address against the ``ipv4_forward`` exact-match
table, decrements TTL, and forwards.  The INT program subclasses this and
adds the telemetry behaviour on top, mirroring how the paper's P4 program
extends ordinary forwarding.
"""

from __future__ import annotations

from repro.p4.pipeline import P4Program, PipelineContext

__all__ = ["PlainForwardingProgram", "FORWARD_TABLE"]

FORWARD_TABLE = "ipv4_forward"


class PlainForwardingProgram(P4Program):
    """Destination-address exact-match forwarding with TTL handling."""

    def __init__(self) -> None:
        super().__init__()
        self.forward_table = self.declare_table(FORWARD_TABLE, default_action="drop")

    def ingress(self, ctx: PipelineContext) -> None:
        # "routing" phase scope: TTL check + the ipv4_forward exact-match
        # lookup — the per-packet forwarding decision on the hot path.
        prof = ctx.switch.sim.profiler
        if prof is not None:
            prof.phase_begin("routing")
        packet = ctx.packet
        if packet.ttl <= 1:
            ctx.mark_drop()
        else:
            action, params = self.forward_table.lookup(packet.dst_addr)
            if action == "forward":
                packet.ttl -= 1
                ctx.set_egress_port(params["port"])
            else:  # "drop" (table miss or explicit drop entry)
                ctx.mark_drop()
        if prof is not None:
            prof.phase_end()

    # Control-plane helper used by the routing module.
    def install_route(self, dst_addr: int, port_index: int) -> None:
        self.forward_table.set_entry(dst_addr, "forward", port=port_index)

    # -- fast path ----------------------------------------------------------

    def _compile_ingress(self):
        """The forwarding decision as one closure: TTL check + exact-match
        lookup with the table's own hit/miss counters, no context object.
        Captures the table's entry dict by reference, so control-plane
        ``set_entry`` updates are visible immediately."""
        table = self.forward_table
        entries = table._entries

        def fast_ingress(packet) -> int:
            if packet.ttl <= 1:
                return -1
            entry = entries.get(packet.dst_addr)
            if entry is None:
                table.misses += 1
                entry = table.default_action
            else:
                table.hits += 1
            if entry[0] == "forward":
                packet.ttl -= 1
                return entry[1]["port"]
            return -1

        return fast_ingress

    def compile(self):
        cls = type(self)
        if (
            cls.process_ingress is not P4Program.process_ingress
            or cls.process_egress is not P4Program.process_egress
            or cls.parse is not P4Program.parse
            or cls.ingress is not PlainForwardingProgram.ingress
            or cls.egress is not P4Program.egress
            or cls.deparse is not P4Program.deparse
        ):
            return None

        def fast_egress(packet, port_index: int, enq_depth: int) -> None:
            return None  # plain forwarding has an empty egress stage

        return self._compile_ingress(), fast_egress
