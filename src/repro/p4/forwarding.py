"""Plain L3 forwarding program — the non-telemetry baseline data plane.

Matches the destination address against the ``ipv4_forward`` exact-match
table, decrements TTL, and forwards.  The INT program subclasses this and
adds the telemetry behaviour on top, mirroring how the paper's P4 program
extends ordinary forwarding.
"""

from __future__ import annotations

from repro.p4.pipeline import P4Program, PipelineContext

__all__ = ["PlainForwardingProgram", "FORWARD_TABLE"]

FORWARD_TABLE = "ipv4_forward"


class PlainForwardingProgram(P4Program):
    """Destination-address exact-match forwarding with TTL handling."""

    def __init__(self) -> None:
        super().__init__()
        self.forward_table = self.declare_table(FORWARD_TABLE, default_action="drop")

    def ingress(self, ctx: PipelineContext) -> None:
        # "routing" phase scope: TTL check + the ipv4_forward exact-match
        # lookup — the per-packet forwarding decision on the hot path.
        prof = ctx.switch.sim.profiler
        if prof is not None:
            prof.phase_begin("routing")
        packet = ctx.packet
        if packet.ttl <= 1:
            ctx.mark_drop()
        else:
            action, params = self.forward_table.lookup(packet.dst_addr)
            if action == "forward":
                packet.ttl -= 1
                ctx.set_egress_port(params["port"])
            else:  # "drop" (table miss or explicit drop entry)
                ctx.mark_drop()
        if prof is not None:
            prof.phase_end()

    # Control-plane helper used by the routing module.
    def install_route(self, dst_addr: int, port_index: int) -> None:
        self.forward_table.set_entry(dst_addr, "forward", port=port_index)
