"""The paper's INT data-plane program (Section III-A, Fig. 2).

Behaviour, per packet class:

* **Regular packet** at egress: fold the queue depth it observed at enqueue
  into the per-port ``max_qdepth`` register (``reg = max(reg, enq_qdepth)``)
  and forward it *unmodified* — the paper's core design choice that avoids
  growing every data packet with INT metadata.

* **Probe packet** at ingress: if the upstream hop stamped an egress
  timestamp, measure upstream link latency as ``local_clock - stamp``.
  This runs before the packet is enqueued, so the measurement excludes this
  switch's queueing delay (Section III-C).

* **Probe packet** at egress: read-and-reset the ``max_qdepth`` register for
  the probe's egress port, append a hop record ``(switch_id, port, qdepth,
  upstream link latency, egress timestamp)`` to the probe payload, and stamp
  the egress timestamp for the next hop's latency measurement.

Registers are per egress port — one register per INT parameter per port, not
per packet (Section III-A).
"""

from __future__ import annotations

from repro.errors import DataPlaneError, PacketError
from repro.p4.forwarding import PlainForwardingProgram
from repro.p4.headers import append_hop_fields
from repro.p4.pipeline import P4Program, PipelineContext

__all__ = ["IntTelemetryProgram", "MAX_QDEPTH_REGISTER"]

MAX_QDEPTH_REGISTER = "max_qdepth"


class IntTelemetryProgram(PlainForwardingProgram):
    """Forwarding + register-based INT collection."""

    def __init__(self) -> None:
        super().__init__()
        self._qdepth_reg = None  # sized at bind time from the port count
        self.probes_processed = 0
        self.data_packets_observed = 0
        self.malformed_probes = 0

    def on_bind(self) -> None:
        assert self.switch is not None
        num_ports = max(1, len(self.switch.ports))
        self._qdepth_reg = self.declare_register(MAX_QDEPTH_REGISTER, num_ports, initial=0)

    # -- parser ---------------------------------------------------------------

    def parse(self, ctx: PipelineContext) -> None:
        # Probe classification: the probe flag models the paper's
        # "UDP with certain IP header fields set (aka Geneve option)".
        ctx.meta["is_probe"] = ctx.packet.is_probe

    # -- ingress ---------------------------------------------------------------

    def ingress(self, ctx: PipelineContext) -> None:
        packet = ctx.packet
        if ctx.meta["is_probe"] and packet.last_egress_ts is not None:
            # Upstream link latency, measured before enqueueing.  Probe-only
            # phase scope (int_stamp): data packets never pay the clock reads.
            assert self.switch is not None
            prof = self.switch.sim.profiler
            if prof is not None:
                prof.phase_begin("int_stamp")
            arrival = self.switch.clock.read()
            packet.int_link_latency = arrival - packet.last_egress_ts
            if prof is not None:
                prof.phase_end()
        super().ingress(ctx)

    # -- fast path -------------------------------------------------------------

    def compile(self):
        """Data packets only: ingress is plain routing (the ``int_stamp``
        latency measurement is probe-only) and egress is the per-port
        max-depth register fold.  Both are emitted as context-free closures;
        probes keep the staged oracle path."""
        cls = type(self)
        if (
            cls.process_ingress is not P4Program.process_ingress
            or cls.process_egress is not P4Program.process_egress
            or cls.parse is not IntTelemetryProgram.parse
            or cls.ingress is not IntTelemetryProgram.ingress
            or cls.egress is not IntTelemetryProgram.egress
            or cls.deparse is not P4Program.deparse
        ):
            return None
        if self._qdepth_reg is None:
            raise DataPlaneError("INT program compiled before bind()")
        reg = self._qdepth_reg
        values = reg._values  # reset() wipes in place, so identity is stable

        def fast_egress(packet, port_index: int, enq_depth: int) -> None:
            # Mirrors the staged egress for a data packet exactly:
            # data_packets_observed += 1 and reg.max_update(port, enq_depth),
            # counter semantics included.
            self.data_packets_observed += 1
            reg.writes += 1
            if enq_depth > values[port_index]:
                values[port_index] = enq_depth

        return self._compile_ingress(), fast_egress

    # -- egress ---------------------------------------------------------------

    def egress(self, ctx: PipelineContext) -> None:
        assert self.switch is not None
        if self._qdepth_reg is None:
            raise DataPlaneError("INT program used before bind()")
        packet = ctx.packet
        port = ctx.egress_port
        assert port is not None
        if not ctx.meta["is_probe"]:
            self.data_packets_observed += 1
            self._qdepth_reg.max_update(port, ctx.enq_depth)
            return

        # Probe: collect-and-reset the register, append the hop record.
        # Field-level append (append_hop_fields): identical bytes to the
        # IntHopRecord/append_hop_record pair without the per-hop frozen-
        # dataclass construction.
        self.probes_processed += 1
        qdepth = self._qdepth_reg.read_and_reset(port)
        egress_ts = self.switch.clock.read()
        if packet.payload is None:
            raise DataPlaneError(
                f"probe packet #{packet.packet_id} has no payload to extend"
            )
        try:
            new_payload = append_hop_fields(
                packet.payload,
                self.switch.switch_id,
                port,
                qdepth,
                packet.int_link_latency,
                egress_ts,
            )
        except PacketError:
            # Probe-flagged packet with an undecodable payload (corruption
            # or spoofing).  A hardware pipeline would forward it untouched;
            # the register value it consumed is restored so real probes
            # still collect it.
            self.malformed_probes += 1
            self._qdepth_reg.max_update(port, qdepth)
            return
        # Probes are padded to a fixed frame size (the paper's 1.5 KB
        # packets), so growing the INT stack does not change the wire size
        # unless the stack outgrows the padding.
        packet.payload = new_payload
        from repro.simnet.packet import HEADER_OVERHEAD  # local import: avoid cycle

        packet.size_bytes = max(packet.size_bytes, HEADER_OVERHEAD + len(new_payload))
        packet.int_link_latency = None
        packet.last_egress_ts = egress_ts
