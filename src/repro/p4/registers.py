"""Stateful register arrays, the P4 ``register`` extern.

The paper's key INT design choice (Section III-A) is to store telemetry in
switch registers — one register per INT parameter per port — instead of
appending INT metadata to every data packet.  Registers are read, maxed, and
reset by the INT program; this module provides the storage with the bounds
checking a real target enforces at compile time.
"""

from __future__ import annotations

from typing import List

from repro.errors import DataPlaneError

__all__ = ["RegisterArray"]


class RegisterArray:
    """Fixed-size array of integer registers, indexed like P4's
    ``register<bit<W>>(size) name``."""

    def __init__(self, name: str, size: int, initial: int = 0) -> None:
        if size < 1:
            raise DataPlaneError(f"register array {name!r}: size must be >= 1, got {size}")
        self.name = name
        self.size = size
        self.initial = initial
        self._values: List[int] = [initial] * size
        self.reads = 0
        self.writes = 0
        self.resets = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise DataPlaneError(
                f"register array {self.name!r}: index {index} out of range [0, {self.size})"
            )

    def read(self, index: int) -> int:
        self._check(index)
        self.reads += 1
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        self._check(index)
        self.writes += 1
        self._values[index] = value

    def max_update(self, index: int, value: int) -> int:
        """``reg[i] = max(reg[i], value)`` — the INT program's per-packet
        queue-depth update.  Returns the stored value."""
        self._check(index)
        self.writes += 1
        cur = self._values[index]
        if value > cur:
            self._values[index] = value
            return value
        return cur

    def read_and_reset(self, index: int) -> int:
        """Atomically read then restore the initial value — the probe
        collection semantics of Section III-A ('values in device registers
        are reset to initial value once they are added to the probe')."""
        self._check(index)
        self.reads += 1
        self.writes += 1
        value = self._values[index]
        self._values[index] = self.initial
        return value

    def reset(self) -> None:
        """Restore every register to its initial value — the whole-array
        wipe a target performs on reboot (used by fault injection's
        ``register_wipe``).  Counted separately from per-index writes.
        Resets in place: compiled fast-path closures capture the backing
        list, so its identity must survive a wipe."""
        self._values[:] = [self.initial] * self.size
        self.resets += 1

    def snapshot(self) -> List[int]:
        """Copy of all register values (test/inspection helper, not a data
        plane operation)."""
        return list(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegisterArray {self.name} size={self.size}>"
