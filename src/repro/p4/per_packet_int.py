"""Classic per-packet INT — the design the paper rejects.

Standard INT-MD embeds the metadata stack into *every* data packet: each
switch appends its hop record and the sink extracts the accumulated stack.
Section III-A rejects this because "the amount of packet payload reserved
for telemetry data will grow quickly as the number of network devices that
packets go through increases" (4.2 % for two fields over five hops, in the
paper's arithmetic).

This program implements the rejected design faithfully enough to *measure*
that argument: every forwarded packet grows by
:data:`~repro.p4.headers.HOP_RECORD_SIZE` per hop (consuming real link
capacity in the simulation), and the per-hop metadata is the instantaneous
queue depth — per-packet INT needs no registers, which is its one genuine
advantage.

Use :class:`PerPacketIntSink` at a receiving host to harvest the stacks.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.p4.forwarding import PlainForwardingProgram
from repro.p4.headers import HOP_RECORD_SIZE, IntHopRecord
from repro.p4.pipeline import PipelineContext
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.host import Host
from repro.simnet.packet import Packet

__all__ = ["PerPacketIntProgram", "PerPacketIntSink"]


class PerPacketIntProgram(PlainForwardingProgram):
    """Forwarding + INT-MD-style per-packet metadata embedding."""

    def __init__(self) -> None:
        super().__init__()
        self.records_embedded = 0
        self.bytes_added = 0

    def ingress(self, ctx: PipelineContext) -> None:
        packet = ctx.packet
        if packet.last_egress_ts is not None:
            assert self.switch is not None
            packet.int_link_latency = self.switch.clock.read() - packet.last_egress_ts
        super().ingress(ctx)

    def egress(self, ctx: PipelineContext) -> None:
        assert self.switch is not None
        packet = ctx.packet
        egress_ts = self.switch.clock.read()
        record = IntHopRecord(
            switch_id=self.switch.switch_id,
            egress_port=ctx.egress_port if ctx.egress_port is not None else 0,
            max_qdepth=ctx.enq_depth,   # instantaneous: no register, no window
            link_latency=packet.int_link_latency,
            egress_ts=egress_ts,
        )
        if packet.int_stack is None:
            packet.int_stack = []
        packet.int_stack.append(record)
        # The stack consumes real wire bytes — the overhead under test.
        packet.size_bytes += HOP_RECORD_SIZE
        self.records_embedded += 1
        self.bytes_added += HOP_RECORD_SIZE
        packet.int_link_latency = None
        packet.last_egress_ts = egress_ts


class PerPacketIntSink:
    """Receiving-host telemetry extraction for per-packet INT.

    Binds a UDP port, counts data and telemetry bytes, and hands each
    packet's stack to an optional consumer — the role the paper assigns to
    "the end hosts (or last P4-capable network device)"."""

    def __init__(
        self,
        host: Host,
        port: int,
        *,
        on_stack: Optional[Callable[[List[IntHopRecord]], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.on_stack = on_stack
        self.packets = 0
        self.telemetry_bytes = 0
        self.total_bytes = 0
        host.bind(PROTO_UDP, port, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        self.packets += 1
        self.total_bytes += packet.size_bytes
        if packet.int_stack:
            self.telemetry_bytes += HOP_RECORD_SIZE * len(packet.int_stack)
            if self.on_stack is not None:
                self.on_stack(list(packet.int_stack))

    @property
    def overhead_fraction(self) -> float:
        """Telemetry bytes as a fraction of all bytes received."""
        if self.total_bytes == 0:
            return 0.0
        return self.telemetry_bytes / self.total_bytes
