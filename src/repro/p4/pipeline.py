"""The P4 program structure: Parser -> Ingress -> Egress -> Deparser.

Section II of the paper describes the four programmable blocks; this module
gives them a Python API.  A :class:`P4Program` is instantiated once per
switch; the switch invokes :meth:`P4Program.process_ingress` when a packet
arrives and :meth:`P4Program.process_egress` when the packet leaves its
egress queue (i.e. with BMv2's ``enq_qdepth`` available).

Per-packet state flows through a :class:`PipelineContext`, the analogue of
P4 user metadata.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import DataPlaneError
from repro.p4.registers import RegisterArray
from repro.p4.tables import ExactMatchTable
from repro.simnet.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.switch import Switch

__all__ = ["PipelineContext", "P4Program"]


class PipelineContext:
    """Per-packet metadata threaded through the pipeline stages."""

    __slots__ = ("packet", "switch", "in_port", "egress_port", "dropped", "enq_depth", "meta")

    def __init__(self, packet: Packet, switch: "Switch", in_port: Optional[int]) -> None:
        self.packet = packet
        self.switch = switch
        self.in_port = in_port
        self.egress_port: Optional[int] = None
        self.dropped = False
        # Queue depth observed at enqueue; only meaningful during egress.
        self.enq_depth: int = 0
        # Free-form user metadata (P4's ``metadata`` struct).
        self.meta: Dict[str, Any] = {}

    def mark_drop(self) -> None:
        self.dropped = True

    def set_egress_port(self, port_index: int) -> None:
        self.egress_port = port_index


class P4Program:
    """Base class for data-plane programs.

    Subclasses override the four stage methods.  The base class provides the
    register/table declaration API (:meth:`declare_register`,
    :meth:`declare_table`) used by programs and inspected by tests and the
    control plane.
    """

    def __init__(self) -> None:
        self.registers: Dict[str, RegisterArray] = {}
        self.tables: Dict[str, ExactMatchTable] = {}
        self.switch: Optional["Switch"] = None

    # -- declaration --------------------------------------------------------

    def declare_register(self, name: str, size: int, initial: int = 0) -> RegisterArray:
        if name in self.registers:
            raise DataPlaneError(f"register {name!r} already declared")
        reg = RegisterArray(name, size, initial)
        self.registers[name] = reg
        return reg

    def declare_table(self, name: str, default_action: str = "drop") -> ExactMatchTable:
        if name in self.tables:
            raise DataPlaneError(f"table {name!r} already declared")
        table = ExactMatchTable(name, default_action)
        self.tables[name] = table
        return table

    def register(self, name: str) -> RegisterArray:
        try:
            return self.registers[name]
        except KeyError:
            raise DataPlaneError(f"unknown register {name!r}") from None

    def table(self, name: str) -> ExactMatchTable:
        try:
            return self.tables[name]
        except KeyError:
            raise DataPlaneError(f"unknown table {name!r}") from None

    # -- lifecycle ----------------------------------------------------------

    def bind(self, switch: "Switch") -> None:
        """Attach the program to its switch (called once at build time)."""
        if self.switch is not None:
            raise DataPlaneError("program already bound to a switch")
        self.switch = switch
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for programs that size resources from switch port count."""

    def compile(self):
        """Fold the pipeline into precompiled per-packet-class closures.

        Returns ``(fast_ingress, fast_egress)`` or ``None``.  The closures
        cover the common **data packet** (non-probe) hop with zero
        :class:`PipelineContext` allocations:

        * ``fast_ingress(packet) -> int`` — parser + ingress control folded
          together; returns the egress port index or ``-1`` for drop.
        * ``fast_egress(packet, port_index, enq_depth) -> None`` — parser +
          egress + deparser folded together.

        Implementations must preserve every externally observable effect of
        the staged path (table hit/miss counters, register write counters,
        packet mutations) and must return ``None`` whenever any stage has
        been overridden by a subclass they do not know about — the staged
        context path then remains the oracle.  Probes and other exotic
        packet classes always take the staged path.

        The base program has no ingress control, so it has no fast path.
        """
        return None

    # -- stages (override in subclasses) -------------------------------------

    def parse(self, ctx: PipelineContext) -> None:
        """Classify the packet; populate ``ctx.meta``."""

    def ingress(self, ctx: PipelineContext) -> None:
        """Forwarding decision: call ``ctx.set_egress_port`` or ``ctx.mark_drop``."""
        raise NotImplementedError

    def egress(self, ctx: PipelineContext) -> None:
        """Egress-time processing (queue depth available in ``ctx.enq_depth``)."""

    def deparse(self, ctx: PipelineContext) -> None:
        """Reassemble the packet before it hits the wire."""

    # -- driver entry points (called by the switch) ---------------------------

    def process_ingress(self, packet: Packet, in_port: Optional[int]) -> PipelineContext:
        if self.switch is None:
            raise DataPlaneError("program not bound to a switch")
        ctx = PipelineContext(packet, self.switch, in_port)
        self.parse(ctx)
        self.ingress(ctx)
        if not ctx.dropped and ctx.egress_port is None:
            raise DataPlaneError(
                f"{type(self).__name__} on {self.switch.name}: ingress neither "
                "forwarded nor dropped the packet"
            )
        return ctx

    def process_egress(self, packet: Packet, out_port: int, enq_depth: int) -> None:
        if self.switch is None:
            raise DataPlaneError("program not bound to a switch")
        ctx = PipelineContext(packet, self.switch, None)
        ctx.egress_port = out_port
        ctx.enq_depth = enq_depth
        self.parse(ctx)
        self.egress(ctx)
        self.deparse(ctx)
