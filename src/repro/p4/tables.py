"""Match-action tables.

The reproduced programs only need exact matching (forwarding matches on the
destination address exactly, since our addresses are flat node identifiers
rather than prefixes), but both of P4's common match kinds are provided:

* :class:`ExactMatchTable` — key -> (action, params), default on miss;
* :class:`LpmTable` — longest-prefix match over integer keys, for programs
  that organize addresses hierarchically (e.g. one prefix per pod).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.errors import DataPlaneError

__all__ = ["ExactMatchTable", "LpmTable", "TableEntry"]

TableEntry = Tuple[str, Dict[str, Any]]


class ExactMatchTable:
    """Exact-match table: key -> (action name, action parameters)."""

    def __init__(self, name: str, default_action: str = "drop") -> None:
        self.name = name
        self.default_action: TableEntry = (default_action, {})
        self._entries: Dict[Hashable, TableEntry] = {}
        self.hits = 0
        self.misses = 0

    def add_entry(self, key: Hashable, action: str, **params: Any) -> None:
        if key in self._entries:
            raise DataPlaneError(f"table {self.name!r}: duplicate entry for key {key!r}")
        self._entries[key] = (action, params)

    def set_entry(self, key: Hashable, action: str, **params: Any) -> None:
        """Insert-or-update (control planes re-programming routes use this)."""
        self._entries[key] = (action, params)

    def remove_entry(self, key: Hashable) -> None:
        try:
            del self._entries[key]
        except KeyError:
            raise DataPlaneError(f"table {self.name!r}: no entry for key {key!r}") from None

    def lookup(self, key: Hashable) -> TableEntry:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return self.default_action
        self.hits += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def entries(self) -> Dict[Hashable, TableEntry]:
        """Copy of the table contents (control-plane inspection)."""
        return dict(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExactMatchTable {self.name} entries={len(self._entries)}>"


class LpmTable:
    """Longest-prefix match over ``width``-bit integer keys.

    Entries are ``(value, prefix_len)``; lookup returns the entry whose
    prefix matches the key with the greatest ``prefix_len``, or the default
    action.  A ``prefix_len`` of 0 is a catch-all; ``width`` an exact match.
    """

    def __init__(self, name: str, *, width: int = 32, default_action: str = "drop") -> None:
        if not 1 <= width <= 64:
            raise DataPlaneError(f"table {name!r}: width must be in [1, 64], got {width}")
        self.name = name
        self.width = width
        self.default_action: TableEntry = (default_action, {})
        # prefix_len -> {masked_value: entry}; scanned longest-first.
        self._by_len: Dict[int, Dict[int, TableEntry]] = {}
        self.hits = 0
        self.misses = 0

    def _mask(self, value: int, prefix_len: int) -> int:
        if prefix_len == 0:
            return 0
        shift = self.width - prefix_len
        return (value >> shift) << shift

    def add_entry(self, value: int, prefix_len: int, action: str, **params: Any) -> None:
        if not 0 <= prefix_len <= self.width:
            raise DataPlaneError(
                f"table {self.name!r}: prefix length {prefix_len} out of [0, {self.width}]"
            )
        if not 0 <= value < (1 << self.width):
            raise DataPlaneError(f"table {self.name!r}: value {value} exceeds width")
        masked = self._mask(value, prefix_len)
        bucket = self._by_len.setdefault(prefix_len, {})
        if masked in bucket:
            raise DataPlaneError(
                f"table {self.name!r}: duplicate {prefix_len}-bit prefix for {value}"
            )
        bucket[masked] = (action, params)

    def lookup(self, key: int) -> TableEntry:
        for prefix_len in sorted(self._by_len, reverse=True):
            masked = self._mask(key, prefix_len)
            entry = self._by_len[prefix_len].get(masked)
            if entry is not None:
                self.hits += 1
                return entry
        self.misses += 1
        return self.default_action

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_len.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LpmTable {self.name} width={self.width} entries={len(self)}>"
