"""A miniature P4-style programmable data plane.

The paper programs BMv2 switches in P4 to (a) record per-port maximum egress
queue depth in registers on every data packet, and (b) splice register values
plus egress timestamps into probe packets (Section III-A, Fig. 2).  This
subpackage reproduces that programming model:

* :mod:`repro.p4.registers` — stateful register arrays;
* :mod:`repro.p4.tables` — exact-match match-action tables;
* :mod:`repro.p4.pipeline` — the Parser / Ingress / Egress / Deparser
  program structure described in the paper's Section II;
* :mod:`repro.p4.headers` — byte-level codecs for the probe header and the
  per-hop INT metadata stack;
* :mod:`repro.p4.int_program` — the paper's INT program itself;
* :mod:`repro.p4.forwarding` — a plain forwarding program (no telemetry),
  used as the "legacy network" baseline and in substrate tests.
"""

from repro.p4.headers import IntHopRecord, decode_probe_payload, encode_probe_header
from repro.p4.int_program import IntTelemetryProgram
from repro.p4.forwarding import PlainForwardingProgram
from repro.p4.per_packet_int import PerPacketIntProgram, PerPacketIntSink
from repro.p4.pipeline import P4Program, PipelineContext
from repro.p4.registers import RegisterArray
from repro.p4.tables import ExactMatchTable, LpmTable

__all__ = [
    "IntHopRecord",
    "decode_probe_payload",
    "encode_probe_header",
    "IntTelemetryProgram",
    "PlainForwardingProgram",
    "PerPacketIntProgram",
    "PerPacketIntSink",
    "P4Program",
    "PipelineContext",
    "RegisterArray",
    "ExactMatchTable",
    "LpmTable",
]
