"""Byte-level codecs for the probe header and per-hop INT metadata stack.

Probe packets are UDP datagrams whose payload is::

    +--------+---------+-----------+
    | magic  | version | hop_count |   4-byte probe header
    +--------+---------+-----------+
    | hop record 0 (17 bytes)      |   appended by the 1st switch
    | hop record 1                 |   appended by the 2nd switch
    | ...                          |
    +------------------------------+

Each hop record is ``!HBHiq``:

======================  ======  ==================================================
field                   bytes   meaning
======================  ======  ==================================================
``switch_id``           2       numeric id of the switch that appended the record
``egress_port``         1       egress port the probe left through
``max_qdepth``          2       max queue depth register value, reset on read
``link_latency_us``     4       measured latency of the *upstream* link in
                                microseconds (signed: clock jitter can produce
                                small negative readings), or the sentinel
                                ``NO_LATENCY`` at the first hop
``egress_ts_us``        8       this switch's egress timestamp in microseconds
======================  ======  ==================================================

The record order encodes the path — Section III-B's topology inference
("if a probe packet contains INT data in S1-S3-S4 order, we can deduce that
S1 and S3 are connected, and so are S3 and S4").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PacketError

__all__ = [
    "IntHopRecord",
    "PROBE_MAGIC",
    "PROBE_VERSION",
    "HOP_RECORD_SIZE",
    "PROBE_HEADER_SIZE",
    "NO_LATENCY",
    "encode_probe_header",
    "encode_hop_record",
    "append_hop_record",
    "append_hop_fields",
    "decode_probe_payload",
]

PROBE_MAGIC = b"NT"
PROBE_VERSION = 1
_HEADER_FMT = "!2sBB"
_RECORD_FMT = "!HBHiq"
PROBE_HEADER_SIZE = struct.calcsize(_HEADER_FMT)   # 4
HOP_RECORD_SIZE = struct.calcsize(_RECORD_FMT)     # 17

# Sentinel for "no upstream latency measurement" (first INT hop).
NO_LATENCY = -(2**31)

_MAX_QDEPTH = 0xFFFF
_MAX_SWITCH_ID = 0xFFFF
_MAX_PORT = 0xFF
_I32_MIN, _I32_MAX = -(2**31) + 1, 2**31 - 1


@dataclass(frozen=True)
class IntHopRecord:
    """Decoded per-hop INT metadata (times in seconds, as floats)."""

    switch_id: int
    egress_port: int
    max_qdepth: int
    link_latency: Optional[float]  # seconds; None at the first hop
    egress_ts: float               # seconds (switch-local clock)

    def __post_init__(self) -> None:
        if not 0 <= self.switch_id <= _MAX_SWITCH_ID:
            raise PacketError(f"switch_id {self.switch_id} out of range")
        if not 0 <= self.egress_port <= _MAX_PORT:
            raise PacketError(f"egress_port {self.egress_port} out of range")
        if self.max_qdepth < 0:
            raise PacketError(f"max_qdepth {self.max_qdepth} negative")


def encode_probe_header(hop_count: int = 0) -> bytes:
    """Initial probe payload (written by the probe sender, no hops yet)."""
    if not 0 <= hop_count <= 0xFF:
        raise PacketError(f"hop_count {hop_count} out of range")
    return struct.pack(_HEADER_FMT, PROBE_MAGIC, PROBE_VERSION, hop_count)


def encode_hop_record(record: IntHopRecord) -> bytes:
    """Serialize one hop record with saturating clamps, as a width-limited
    P4 header field would."""
    qdepth = min(record.max_qdepth, _MAX_QDEPTH)
    if record.link_latency is None:
        latency_us = NO_LATENCY
    else:
        latency_us = int(round(record.link_latency * 1e6))
        latency_us = max(_I32_MIN, min(_I32_MAX, latency_us))
    ts_us = int(round(record.egress_ts * 1e6))
    return struct.pack(
        _RECORD_FMT, record.switch_id, record.egress_port, qdepth, latency_us, ts_us
    )


def _parse_header(payload: bytes) -> Tuple[int, int]:
    if len(payload) < PROBE_HEADER_SIZE:
        raise PacketError(f"probe payload truncated: {len(payload)}B < header")
    magic, version, hop_count = struct.unpack_from(_HEADER_FMT, payload, 0)
    if magic != PROBE_MAGIC:
        raise PacketError(f"bad probe magic {magic!r}")
    if version != PROBE_VERSION:
        raise PacketError(f"unsupported probe version {version}")
    return version, hop_count


def append_hop_record(payload: bytes, record: IntHopRecord) -> bytes:
    """Return ``payload`` with ``record`` appended and hop_count incremented —
    what the INT program's deparser emits at each switch."""
    return append_hop_fields(
        payload,
        record.switch_id,
        record.egress_port,
        record.max_qdepth,
        record.link_latency,
        record.egress_ts,
    )


def append_hop_fields(
    payload: bytes,
    switch_id: int,
    egress_port: int,
    max_qdepth: int,
    link_latency: Optional[float],
    egress_ts: float,
) -> bytes:
    """Field-level twin of :func:`append_hop_record` for the per-probe hot
    path: identical bytes out (same clamps, same range checks), without
    constructing the frozen :class:`IntHopRecord` in between."""
    if not 0 <= switch_id <= _MAX_SWITCH_ID:
        raise PacketError(f"switch_id {switch_id} out of range")
    if not 0 <= egress_port <= _MAX_PORT:
        raise PacketError(f"egress_port {egress_port} out of range")
    if max_qdepth < 0:
        raise PacketError(f"max_qdepth {max_qdepth} negative")
    _, hop_count = _parse_header(payload)
    if hop_count >= 0xFF:
        raise PacketError("INT stack full (255 hops)")
    expected = PROBE_HEADER_SIZE + hop_count * HOP_RECORD_SIZE
    if len(payload) != expected:
        raise PacketError(
            f"probe payload length {len(payload)} inconsistent with hop_count={hop_count}"
        )
    if link_latency is None:
        latency_us = NO_LATENCY
    else:
        latency_us = int(round(link_latency * 1e6))
        latency_us = max(_I32_MIN, min(_I32_MAX, latency_us))
    return (
        struct.pack(_HEADER_FMT, PROBE_MAGIC, PROBE_VERSION, hop_count + 1)
        + payload[PROBE_HEADER_SIZE:]
        + struct.pack(
            _RECORD_FMT,
            switch_id,
            egress_port,
            min(max_qdepth, _MAX_QDEPTH),
            latency_us,
            int(round(egress_ts * 1e6)),
        )
    )


def decode_probe_payload(payload: bytes) -> List[IntHopRecord]:
    """Decode the full INT stack, in path order (collector side)."""
    _, hop_count = _parse_header(payload)
    expected = PROBE_HEADER_SIZE + hop_count * HOP_RECORD_SIZE
    if len(payload) != expected:
        raise PacketError(
            f"probe payload length {len(payload)} != expected {expected} "
            f"for hop_count={hop_count}"
        )
    records: List[IntHopRecord] = []
    offset = PROBE_HEADER_SIZE
    for _ in range(hop_count):
        switch_id, port, qdepth, latency_us, ts_us = struct.unpack_from(
            _RECORD_FMT, payload, offset
        )
        offset += HOP_RECORD_SIZE
        latency = None if latency_us == NO_LATENCY else latency_us / 1e6
        records.append(
            IntHopRecord(
                switch_id=switch_id,
                egress_port=port,
                max_qdepth=qdepth,
                link_latency=latency,
                egress_ts=ts_us / 1e6,
            )
        )
    return records
