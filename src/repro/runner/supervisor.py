"""Supervised process-per-run execution: timeouts, crash retry, backoff.

The bare executor the Runner used through PR 5 trusted its workers: a hung
run stalled the sweep forever, an OOM-killed worker took the whole pool
down with a cryptic ``BrokenProcessPool``, and neither left a usable record
of *which* cell died or why.  This module is the supervision layer:

* every pending run executes in its **own spawn-started process** with a
  **wall-clock deadline** (``run_timeout``; when unset, a generous default
  scaled from the spec's expected sim duration via
  :func:`default_run_timeout`) — a run past its deadline is SIGKILLed and
  recorded as a structured ``timeout`` failure instead of hanging the grid;
* a crashed (signal / nonzero exit) or raising worker is **retried** on a
  fresh process with bounded exponential backoff (``retries`` additional
  attempts), and the final failure carries a full **failure envelope**:
  failure kind, exception type, traceback, attempt count, and the worker's
  exit signal;
* results stream back through a callback as they complete, so the caller
  (the Runner) can persist each one to cache/journal immediately —
  a later crash or Ctrl-C cannot lose already-finished work;
* ``Ctrl-C`` kills every in-flight worker before propagating, so an
  interrupted sweep leaves no orphan processes behind.

Results are read from a pipe *before* waiting on process exit — a worker
with a multi-megabyte envelope blocks in ``send`` until the parent reads,
so waiting on the process sentinel alone would deadlock.

Deterministic chaos for the harness's own test-suite rides on the
``REPRO_CHAOS`` environment variable (see :func:`_inject_chaos`): a JSON
list of rules that make matching workers SIGKILL themselves, hang forever,
or raise, on chosen attempt numbers.  Spawned workers inherit the
environment, so the chaos plan reaches them without any pickling support.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError

__all__ = [
    "CHAOS_ENV",
    "DEFAULT_RETRIES",
    "RunInterrupted",
    "RunsFailedError",
    "Supervisor",
    "backoff_delay",
    "default_run_timeout",
    "failure_from_exception",
]

# Retries the CLI applies by default (the Runner library default stays 0 so
# embedding code opts in explicitly).
DEFAULT_RETRIES = 1

# Default per-run timeout: max(floor, scale * expected sim duration).  This
# is a hang ceiling, not a performance bound — generous on purpose, because
# wall-per-sim-second varies by orders of magnitude across scales and hosts.
DEFAULT_TIMEOUT_FLOOR_S = 300.0
DEFAULT_TIMEOUT_SCALE = 20.0

# Exponential backoff between attempts: base * factor**(attempt-1), capped.
DEFAULT_BACKOFF_BASE_S = 0.5
DEFAULT_BACKOFF_FACTOR = 2.0
DEFAULT_BACKOFF_MAX_S = 30.0

CHAOS_ENV = "REPRO_CHAOS"


# ---------------------------------------------------------------------------
# Exceptions
# ---------------------------------------------------------------------------

class RunInterrupted(ExperimentError):
    """A sweep was interrupted (Ctrl-C / SIGINT) after persisting completed
    work.  Carries enough state for the CLI to print a resume summary."""

    def __init__(
        self,
        *,
        completed: int,
        failed: int,
        total: int,
        journal_path: Optional[str] = None,
    ) -> None:
        self.completed = completed
        self.failed = failed
        self.total = total
        self.journal_path = journal_path
        pending = max(0, total - completed - failed)
        message = (
            f"interrupted: {completed}/{total} run(s) completed"
            + (f", {failed} failed" if failed else "")
            + f", {pending} pending"
        )
        if journal_path:
            message += f"; resume with: repro resume {journal_path}"
        super().__init__(message)


class RunsFailedError(ExperimentError):
    """One or more runs of a sweep failed after exhausting retries.

    Raised *after* the whole grid was attempted and every completed result
    was persisted, so nothing but the failed cells is lost.  ``results``
    holds every :class:`~repro.runner.runner.RunResult` (failed ones carry
    their failure envelope); ``failures`` is the failed subset."""

    def __init__(
        self,
        message: str,
        *,
        results: Optional[List[Any]] = None,
        failures: Optional[List[Any]] = None,
    ) -> None:
        super().__init__(message)
        self.results = list(results or [])
        self.failures = list(failures or [])


# ---------------------------------------------------------------------------
# Failure envelopes
# ---------------------------------------------------------------------------

def failure_from_exception(exc: BaseException, *, attempts: int) -> Dict[str, Any]:
    """Failure envelope for an exception raised while executing a spec."""
    return {
        "kind": "exception",
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
        "attempts": attempts,
        "exit_code": None,
        "signal": None,
        "run_timeout_s": None,
    }


def _signal_name(signum: int) -> str:
    try:
        return signal.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


def backoff_delay(
    attempt: int,
    *,
    base: float = DEFAULT_BACKOFF_BASE_S,
    factor: float = DEFAULT_BACKOFF_FACTOR,
    maximum: float = DEFAULT_BACKOFF_MAX_S,
) -> float:
    """Delay before retrying after the ``attempt``-th (1-based) failure."""
    return min(maximum, base * factor ** (attempt - 1))


def default_run_timeout(spec: Any) -> float:
    """Per-spec default wall-clock timeout, scaled from the spec's expected
    sim duration (see ``RunSpec.expected_sim_duration``)."""
    try:
        estimate = float(spec.expected_sim_duration())
    except (AttributeError, TypeError, ValueError):
        estimate = 0.0
    return max(DEFAULT_TIMEOUT_FLOOR_S, DEFAULT_TIMEOUT_SCALE * estimate)


# ---------------------------------------------------------------------------
# Chaos injection (harness test-suite only)
# ---------------------------------------------------------------------------

def _inject_chaos(spec_json: str, attempt: int) -> None:
    """Apply the ``REPRO_CHAOS`` plan, if any, inside a worker process.

    The plan is a JSON list of rules, e.g.::

        [{"match": "\\"policy\\":\\"random\\"", "action": "kill", "attempts": [1]}]

    ``match`` is a substring of the run's canonical spec JSON (empty matches
    every run), ``attempts`` lists the 1-based attempt numbers the rule
    fires on (default: first attempt only), and ``action`` is ``kill``
    (SIGKILL self — a crash), ``hang`` (sleep forever — a timeout), or
    ``raise`` (raise RuntimeError — an exception failure).  Used by the
    chaos test-suite and the CI chaos-smoke job; inert otherwise."""
    plan = os.environ.get(CHAOS_ENV)
    if not plan:
        return
    try:
        rules = json.loads(plan)
    except ValueError:
        return
    if isinstance(rules, dict):
        rules = [rules]
    if not isinstance(rules, list):
        return
    for rule in rules:
        if not isinstance(rule, dict):
            continue
        match = str(rule.get("match", ""))
        if match and match not in spec_json:
            continue
        if attempt not in rule.get("attempts", [1]):
            continue
        action = rule.get("action")
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            while True:  # parent's deadline converts this into a timeout
                time.sleep(3600)
        elif action == "raise":
            raise RuntimeError(f"chaos: injected failure (attempt {attempt})")


def _supervised_worker(conn: Any, spec_json: str, attempt: int) -> None:
    """Worker entry point: execute one spec, send the outcome on the pipe.

    Protocol: ``("ok", envelope_json)`` on success, ``("error", type, message,
    traceback)`` on any exception.  A worker that dies without sending
    (SIGKILL, OOM, interpreter abort) is classified as a crash by the parent
    from its exit code."""
    try:
        _inject_chaos(spec_json, attempt)
        from repro.runner.runner import _execute_envelope_json

        envelope_json = _execute_envelope_json(spec_json)
    except BaseException as exc:  # noqa: BLE001 - the pipe is the error channel
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", envelope_json))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

@dataclass
class RunOutcome:
    """Terminal outcome of one supervised spec (after any retries)."""

    spec_hash: str
    ok: bool
    envelope_json: Optional[str] = None
    failure: Optional[Dict[str, Any]] = None
    attempts: int = 1


@dataclass
class _Job:
    spec_hash: str
    spec_json: str
    timeout_s: Optional[float]
    attempt: int = 1


@dataclass
class _Active:
    job: _Job
    process: Any
    conn: Any
    deadline: Optional[float]
    timed_out: bool = False
    message: Optional[Tuple[Any, ...]] = field(default=None)


class Supervisor:
    """Run (spec_hash, spec_json, timeout) triples on supervised processes.

    ``jobs`` bounds concurrency; each attempt gets a fresh spawn-started
    process (full interpreter isolation, same guarantee the old
    ``max_tasks_per_child=1`` pool gave).  ``on_done(outcome)`` fires once
    per spec with its terminal :class:`RunOutcome`, in completion order;
    ``on_retry(spec_hash, attempt, failure, backoff_s)`` fires before each
    backoff wait."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        retries: int = 0,
        backoff_base: float = DEFAULT_BACKOFF_BASE_S,
        backoff_factor: float = DEFAULT_BACKOFF_FACTOR,
        backoff_max: float = DEFAULT_BACKOFF_MAX_S,
        on_retry: Optional[Callable[[str, int, Dict[str, Any], float], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.on_retry = on_retry

    # -- public API --------------------------------------------------------

    def run(
        self,
        work: List[Tuple[str, str, Optional[float]]],
        on_done: Callable[[RunOutcome], None],
    ) -> None:
        """Execute every (spec_hash, spec_json, timeout_s) triple.

        On ``KeyboardInterrupt`` every in-flight worker is SIGKILLed before
        the interrupt propagates — completed outcomes were already delivered
        through ``on_done``, so the caller loses only unfinished work."""
        import multiprocessing
        from multiprocessing import connection as mp_connection

        ctx = multiprocessing.get_context("spawn")
        ready: List[_Job] = [
            _Job(spec_hash, spec_json, timeout_s)
            for spec_hash, spec_json, timeout_s in work
        ]
        delayed: List[Tuple[float, _Job]] = []  # (ready_at, job)
        running: List[_Active] = []

        def launch(job: _Job) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_supervised_worker,
                args=(child_conn, job.spec_json, job.attempt),
                daemon=True,
            )
            process.start()
            child_conn.close()  # parent keeps only the read end
            deadline = (
                time.monotonic() + job.timeout_s
                if job.timeout_s is not None and job.timeout_s > 0
                else None
            )
            running.append(_Active(job, process, parent_conn, deadline))

        def harvest(active: _Active) -> None:
            """Turn one finished/killed worker into a retry or an outcome."""
            running.remove(active)
            job = active.job
            process, conn = active.process, active.conn
            message = active.message
            if message is None and conn.poll():
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
            process.join(timeout=30.0)
            if process.is_alive():  # refused to exit after sending: force it
                process.kill()
                process.join()
            conn.close()
            exit_code = process.exitcode
            process.close()

            failure: Optional[Dict[str, Any]]
            if active.timed_out:
                failure = {
                    "kind": "timeout",
                    "error_type": "RunTimeout",
                    "message": (
                        f"run exceeded its {job.timeout_s:.1f}s wall-clock "
                        f"timeout and was killed"
                    ),
                    "traceback": None,
                    "attempts": job.attempt,
                    "exit_code": exit_code,
                    "signal": _signal_name(signal.SIGKILL),
                    "run_timeout_s": job.timeout_s,
                }
            elif message is not None and message[0] == "ok":
                on_done(RunOutcome(
                    spec_hash=job.spec_hash, ok=True,
                    envelope_json=message[1], attempts=job.attempt,
                ))
                return
            elif message is not None and message[0] == "error":
                failure = {
                    "kind": "exception",
                    "error_type": message[1],
                    "message": message[2],
                    "traceback": message[3],
                    "attempts": job.attempt,
                    "exit_code": exit_code,
                    "signal": None,
                    "run_timeout_s": job.timeout_s,
                }
            else:  # died without a message: crash (signal or hard exit)
                signum = -exit_code if exit_code is not None and exit_code < 0 else None
                failure = {
                    "kind": "crash",
                    "error_type": "WorkerCrash",
                    "message": (
                        f"worker died with {_signal_name(signum)}"
                        if signum is not None
                        else f"worker exited with code {exit_code} "
                             f"without returning a result"
                    ),
                    "traceback": None,
                    "attempts": job.attempt,
                    "exit_code": exit_code,
                    "signal": _signal_name(signum) if signum is not None else None,
                    "run_timeout_s": job.timeout_s,
                }

            if job.attempt <= self.retries:
                backoff = backoff_delay(
                    job.attempt, base=self.backoff_base,
                    factor=self.backoff_factor, maximum=self.backoff_max,
                )
                if self.on_retry is not None:
                    self.on_retry(job.spec_hash, job.attempt, failure, backoff)
                job.attempt += 1
                delayed.append((time.monotonic() + backoff, job))
            else:
                on_done(RunOutcome(
                    spec_hash=job.spec_hash, ok=False,
                    failure=failure, attempts=job.attempt,
                ))

        try:
            while ready or delayed or running:
                now = time.monotonic()
                if delayed:
                    due = [j for t, j in delayed if t <= now]
                    delayed[:] = [(t, j) for t, j in delayed if t > now]
                    ready.extend(due)
                while ready and len(running) < self.jobs:
                    launch(ready.pop(0))
                if not running:
                    if delayed:  # everything is backing off: sleep it out
                        time.sleep(max(0.0, min(t for t, _ in delayed) - now))
                    continue

                # Wait on result pipes AND process sentinels: the pipe fires
                # for a worker blocked sending a large envelope, the sentinel
                # for one that died without sending anything.
                wait_for: List[Any] = []
                by_handle: Dict[Any, _Active] = {}
                for active in running:
                    by_handle[active.conn] = active
                    by_handle[active.process.sentinel] = active
                    wait_for.extend((active.conn, active.process.sentinel))
                deadlines = [a.deadline for a in running if a.deadline is not None]
                timeout: Optional[float] = None
                horizons = deadlines + [t for t, _ in delayed]
                if horizons:
                    timeout = max(0.0, min(horizons) - now)
                fired = mp_connection.wait(wait_for, timeout=timeout)

                finished: List[_Active] = []
                for handle in fired:
                    active = by_handle[handle]
                    if active in finished:
                        continue
                    if handle is active.conn:
                        # Drain the result now — before process exit — so a
                        # worker blocked in send() can finish and exit.
                        try:
                            active.message = active.conn.recv()
                        except (EOFError, OSError):
                            active.message = None
                    finished.append(active)
                now = time.monotonic()
                for active in list(running):
                    if (
                        active not in finished
                        and active.deadline is not None
                        and now >= active.deadline
                    ):
                        active.timed_out = True
                        active.process.kill()
                        finished.append(active)
                for active in finished:
                    if active.message is None and active.process.is_alive():
                        # Sentinel may race the final pipe write; give the
                        # exiting worker a moment, then harvest regardless.
                        active.process.join(timeout=5.0)
                    harvest(active)
        except BaseException:
            for active in running:
                try:
                    active.process.kill()
                    active.process.join()
                    active.conn.close()
                except (OSError, ValueError):
                    pass
            running.clear()
            raise
