"""The Runner: grid expansion, supervised execution, and result envelopes.

The paper's evaluation is a grid of independent simulation runs — policy ×
size class × seed × probing interval × fault scenario.  The Runner executes
any list of specs (see :mod:`repro.runner.spec`) either serially in-process
or under the supervision layer (:mod:`repro.runner.supervisor`), with:

* **per-run process isolation** — supervised workers use the ``spawn``
  start method (no inherited parent state) and one fresh process per
  attempt;
* **resilience** — per-run wall-clock timeouts, crash/timeout retry with
  exponential backoff, structured ``failure`` envelopes on results instead
  of lost sweeps, and graceful Ctrl-C that persists completed work;
* **determinism** — a run's payload depends only on its spec; serial and
  parallel executions of the same grid produce byte-identical payloads
  (asserted by ``repro bench-runner`` and the CI bench-smoke job);
* **content-addressed caching** — completed envelopes land in
  ``.runcache/<hash>.json`` (checksum-verified on read, see
  :mod:`repro.runner.cache`) the moment each run finishes, so a crash
  never loses completed cells;
* **checkpointed resume** — an optional :class:`~repro.runner.journal.
  RunJournal` records per-spec completion state, letting ``--resume``
  re-run only missing/failed cells;
* **progress/ETA** — wall-clock progress lines via a callback plus metrics
  and events on an optional :class:`repro.obs.Observability` hub.

Every experiment driver (comparison, fault scenarios, probing sweep,
sensitivity, calibration, ECDF) is a thin grid definition over this module.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.runner.cache import ResultCache
from repro.runner.journal import RunJournal
from repro.runner.spec import (
    CalibrationSpec,
    RunSpec,
    canonical_json,
    spec_from_dict,
)
from repro.runner.supervisor import (
    RunInterrupted,
    RunsFailedError,
    Supervisor,
    backoff_delay,
    default_run_timeout,
    failure_from_exception,
)
from repro.simnet.random import derive_seed

__all__ = [
    "RunResult",
    "Runner",
    "RunnerStats",
    "expand_grid",
    "execute_spec",
]


# ---------------------------------------------------------------------------
# Result envelope
# ---------------------------------------------------------------------------

@dataclass
class RunResult:
    """One completed (or failed) run: payload plus provenance, content-
    addressed.

    ``payload`` is the deterministic part (metrics, per-task records, obs
    exports) — byte-identical across serial/parallel/cached executions of
    the same spec.  ``provenance`` records how this particular execution
    happened (code version, wall time, executor) and is excluded from
    determinism comparisons.  ``raw`` holds the exact cached bytes when the
    result came off disk.  ``failure``, when set, is the structured failure
    envelope of a run that exhausted its retries (kind, exception type,
    traceback, attempt count, worker exit signal); failed results have an
    empty payload and are never cached."""

    spec: Any
    spec_hash: str
    payload: Dict[str, Any]
    provenance: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False
    raw: Optional[bytes] = None
    failure: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def payload_json(self) -> str:
        """Canonical JSON of the deterministic payload."""
        return canonical_json(self.payload)

    def to_envelope(self) -> Dict[str, Any]:
        envelope = {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "payload": self.payload,
            "provenance": self.provenance,
        }
        # Only failed results carry the key at all, so successful envelope
        # bytes are unchanged from the pre-supervision format.
        if self.failure is not None:
            envelope["failure"] = self.failure
        return envelope

    def to_json(self) -> str:
        return canonical_json(self.to_envelope())

    @classmethod
    def from_envelope(
        cls,
        envelope: Dict[str, Any],
        *,
        from_cache: bool = False,
        raw: Optional[bytes] = None,
    ) -> "RunResult":
        return cls(
            spec=spec_from_dict(envelope["spec"]),
            spec_hash=envelope["spec_hash"],
            payload=envelope["payload"],
            provenance=dict(envelope.get("provenance", {})),
            from_cache=from_cache,
            raw=raw,
            failure=envelope.get("failure"),
        )

    # -- typed views -------------------------------------------------------

    def _require_ok(self) -> None:
        if self.failure is not None:
            raise ExperimentError(
                f"run {self.spec.label()} failed "
                f"({self.failure.get('kind', '?')}: "
                f"{self.failure.get('message', '?')}); no payload to read"
            )

    def experiment_result(self) -> Any:
        """Rebuild the full :class:`ExperimentResult` for this cell."""
        from repro.experiments.export import result_from_dict

        self._require_ok()
        if not isinstance(self.spec, RunSpec):
            raise ExperimentError(
                f"spec kind {type(self.spec).__name__} is not an experiment"
            )
        return result_from_dict(self.payload, self.spec.to_config())

    def calibration_point(self) -> Any:
        from repro.experiments.calibration import CalibrationPoint

        self._require_ok()
        if not isinstance(self.spec, CalibrationSpec):
            raise ExperimentError(
                f"spec kind {type(self.spec).__name__} is not a calibration run"
            )
        return CalibrationPoint(**self.payload["calibration"])

    def obs_records(self) -> List[Dict[str, Any]]:
        """Observability records captured by this run ([] for plain runs)."""
        return list(self.payload.get("obs_records", ()))

    def trace_records(self) -> List[Dict[str, Any]]:
        """Causal span records captured by this run ([] unless traced)."""
        return list(self.payload.get("trace_records", ()))

    def profile(self) -> Optional[Dict[str, Any]]:
        """Engine profile summary, or None.  Lives in provenance: handler
        wall-times are nondeterministic and must not affect payload bytes."""
        return self.provenance.get("profile")


# ---------------------------------------------------------------------------
# Spec execution (runs in the worker process)
# ---------------------------------------------------------------------------

def execute_spec(spec: Any) -> Dict[str, Any]:
    """Execute one spec and return its deterministic payload.

    A profiled spec's engine profile rides back under the ``"_profile"``
    payload key temporarily; :func:`_execute_envelope_json` moves it into
    provenance because handler wall-times are nondeterministic.
    """
    profiler = None
    memory_capture = None
    if getattr(spec, "profile", False):
        from repro.obs.perf import MemoryCapture
        from repro.simnet.engine import EngineProfiler

        profiler = EngineProfiler()
        # gc counters always ride with a profile; allocation-site tracing
        # (tracemalloc) only when the spec opted in — it costs real time.
        memory_capture = MemoryCapture(
            tracemalloc_top=10 if getattr(spec, "mem_profile", False) else 0
        )
    if isinstance(spec, RunSpec):
        from repro.experiments.export import result_to_dict
        from repro.experiments.harness import run_experiment

        obs = None
        labels = spec.obs_run()
        sampled = getattr(spec, "sample_interval", None)
        telquality = bool(getattr(spec, "telquality", False))
        whatif = bool(getattr(spec, "whatif", False))
        if (
            labels is not None or spec.trace or sampled is not None
            or telquality or whatif
        ):
            from repro.obs import Observability

            if labels is None:
                # Instrumented run without explicit obs labels: synthesize
                # the grid identity so multi-cell exports stay separable.
                labels = {
                    "policy": spec.policy,
                    "size_class": spec.size_class,
                    "seed": spec.seed,
                }
            obs = Observability(
                run=labels, trace=spec.trace, sample_interval=sampled,
                telquality=telquality, whatif=whatif,
            )
        if memory_capture is not None:
            memory_capture.start()
        result = run_experiment(spec.to_config(), obs=obs, profiler=profiler)
        if memory_capture is not None:
            profiler.memory = memory_capture.stop()
        payload = result_to_dict(result, include_tasks=True)
        if obs is not None and (
            spec.obs_run() is not None or sampled is not None or telquality
            or whatif
        ):
            payload["obs_records"] = obs.snapshot_records()
        if obs is not None and spec.trace:
            payload["trace_records"] = obs.trace_records()
        if profiler is not None:
            payload["_profile"] = profiler.summary()
        return payload
    if isinstance(spec, CalibrationSpec):
        from dataclasses import asdict

        from repro.experiments.calibration import run_calibration

        if memory_capture is not None:
            memory_capture.start()
        point = run_calibration(
            spec.utilization,
            duration=spec.duration,
            rate_bps=spec.rate_bps,
            link_delay=spec.link_delay,
            probing_interval=spec.probing_interval,
            seed=spec.seed,
            profiler=profiler,
        )
        if memory_capture is not None:
            profiler.memory = memory_capture.stop()
        payload = {"calibration": asdict(point)}
        if profiler is not None:
            payload["_profile"] = profiler.summary()
        return payload
    raise ExperimentError(f"cannot execute spec of type {type(spec).__name__}")


def _execute_envelope_json(spec_json: str) -> str:
    """Worker entry point: spec JSON in, canonical envelope JSON out.

    Serial and supervised execution share this function so their envelopes
    are produced by the same code path; only ``provenance.wall_time_s`` (and
    the executor tag the parent stamps) can differ between them."""
    import repro

    spec = spec_from_dict(json.loads(spec_json))
    started = time.monotonic()
    payload = execute_spec(spec)
    wall = time.monotonic() - started
    provenance = {
        "code_version": repro.__version__,
        "wall_time_s": round(wall, 6),
    }
    # The engine profile is execution metadata (real wall-times), not part
    # of the deterministic payload.
    profile = payload.pop("_profile", None)
    if profile is not None:
        provenance["profile"] = profile
    envelope = {
        "spec": spec.to_dict(),
        "spec_hash": spec.content_hash(),
        "payload": payload,
        "provenance": provenance,
    }
    return canonical_json(envelope)


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------

def expand_grid(
    base: Any,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    repeats: Optional[int] = None,
    master_seed: Optional[int] = None,
) -> List[Any]:
    """Cross-product a base spec with per-field value lists.

    ``axes`` maps spec field names to the values to sweep (e.g.
    ``{"size_class": ["VS", "S"], "policy": ["aware", "nearest"]}``); axis
    order fixes expansion order, so grids are deterministic.  ``repeats``
    replaces each cell with ``repeats`` copies whose seeds derive from
    ``derive_seed(master_seed, "repeat:<i>")`` — a function of the master
    seed and repeat index only, so every policy (and any future axis) sees
    the same per-repeat seeds no matter how the grid is ordered."""
    axes = dict(axes or {})
    names = list(axes)
    cells: List[Any] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        cells.append(base.with_(**dict(zip(names, combo))))
    if repeats is None:
        return cells
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    root = master_seed if master_seed is not None else base.seed
    out: List[Any] = []
    for cell in cells:
        for i in range(repeats):
            out.append(cell.with_(seed=derive_seed(root, f"repeat:{i}")))
    return out


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

@dataclass
class RunnerStats:
    """Wall-clock accounting for one :meth:`Runner.run` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    failed: int = 0
    retried: int = 0
    wall_time_s: float = 0.0


class Runner:
    """Execute spec lists serially or under supervision, with caching.

    ``jobs=1`` without a ``run_timeout`` runs in-process (no child
    processes, no pickling) with exception-level retry and graceful
    Ctrl-C.  ``jobs>1``, or ``jobs=1`` with a positive ``run_timeout``,
    runs under the :class:`~repro.runner.supervisor.Supervisor`: one
    ``spawn``-started process per attempt, per-run wall-clock deadlines,
    and crash recovery — no run ever observes another's interpreter state
    and a hung or killed worker costs only its own cell.

    Resilience knobs:

    * ``run_timeout`` — seconds per run; ``None`` scales a generous default
      from each spec (supervised runs only), ``0`` disables deadlines;
    * ``retries`` — extra attempts after a crash/timeout/exception, with
      exponential backoff (``backoff_base`` doubling per attempt);
    * ``journal`` — a :class:`~repro.runner.journal.RunJournal` recording
      per-spec completion for ``--resume``;
    * ``on_failure`` — ``"raise"`` (default) raises :class:`RunsFailedError`
      after the whole grid has been attempted; ``"keep"`` returns failed
      results (with their ``failure`` envelopes) in place.

    ``cache`` (a :class:`ResultCache`) makes completed cells free on
    re-run; results are persisted the moment each run finishes, so crashes
    lose nothing completed.  ``progress`` receives one human line per
    completed run including an ETA; ``obs`` (a
    :class:`repro.obs.Observability`) additionally records runner metrics
    and per-run events."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[str], None]] = None,
        obs: Optional[Any] = None,
        trace: bool = False,
        profile: bool = False,
        mem_profile: bool = False,
        sample_interval: Optional[float] = None,
        telquality: bool = False,
        whatif: bool = False,
        run_timeout: Optional[float] = None,
        retries: int = 0,
        backoff_base: float = 0.5,
        journal: Optional[RunJournal] = None,
        on_failure: str = "raise",
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {retries}")
        if run_timeout is not None and run_timeout < 0:
            raise ExperimentError(
                f"run_timeout must be >= 0 (0 disables), got {run_timeout}"
            )
        if on_failure not in ("raise", "keep"):
            raise ExperimentError(
                f"on_failure must be 'raise' or 'keep', got {on_failure!r}"
            )
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.obs = obs
        self.run_timeout = run_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.journal = journal
        self.on_failure = on_failure
        # Instrumentation: stamp every incoming spec with these flags before
        # hashing (so traced/profiled/sampled cells never alias plain cache
        # entries) and accumulate the per-run outputs across run() calls.
        # mem_profile implies profile.
        self.trace = trace
        self.mem_profile = mem_profile
        self.profile = profile or mem_profile
        self.sample_interval = sample_interval
        self.telquality = telquality
        self.whatif = whatif
        self.trace_records: List[Dict[str, Any]] = []
        self.profiles: List[Dict[str, Any]] = []
        if obs is not None:
            started = time.monotonic()
            clock = lambda: time.monotonic() - started  # noqa: E731
            obs.metrics.bind_clock(clock)
            obs.events.bind_clock(clock)
        if cache is not None and cache.on_corrupt is None:
            cache.on_corrupt = self._on_cache_corrupt
        self.stats = RunnerStats()

    # -- public API --------------------------------------------------------

    def run(self, specs: Sequence[Any]) -> List[RunResult]:
        """Execute every spec; results come back in spec order.

        Duplicate specs (same content hash) execute once and share their
        result object.  Each completed run is cached and journaled the
        moment it finishes.  On Ctrl-C, completed work stays persisted and
        :class:`RunInterrupted` propagates with a resume summary; if any
        run fails after its retries and ``on_failure == "raise"``,
        :class:`RunsFailedError` is raised *after* the whole grid was
        attempted."""
        started = time.monotonic()
        if (
            self.trace or self.profile or self.sample_interval is not None
            or self.telquality or self.whatif
        ):
            specs = [
                spec.instrumented(
                    trace=self.trace,
                    profile=self.profile,
                    mem_profile=self.mem_profile,
                    sample_interval=self.sample_interval,
                    telquality=self.telquality,
                    whatif=self.whatif,
                )
                for spec in specs
            ]
        hashes = [spec.content_hash() for spec in specs]
        # Bind self.stats immediately: _on_retry bumps self.stats.retried
        # mid-run, so it must be the same object we account into here.
        stats = self.stats = RunnerStats(total=len(specs))
        results: Dict[str, RunResult] = {}

        # Unique work, in first-appearance order.
        unique: Dict[str, Any] = {}
        for spec, spec_hash in zip(specs, hashes):
            unique.setdefault(spec_hash, spec)

        # Journal the full grid up front: the journal alone must be able to
        # reconstruct every cell of an interrupted sweep, cache hits
        # included.
        if self.journal is not None:
            for spec_hash, spec in unique.items():
                self.journal.scheduled(spec_hash, spec)

        pending: List[str] = []
        done = 0
        for spec_hash, spec in unique.items():
            cached = self.cache.get(spec_hash) if self.cache is not None else None
            if cached is not None:
                results[spec_hash] = RunResult.from_envelope(
                    json.loads(cached), from_cache=True, raw=cached
                )
                stats.cache_hits += 1
                done += 1
                if self.journal is not None:
                    self.journal.done(spec_hash, cached=True)
                self._report(spec, spec_hash, done, len(unique), started, cached=True)
            else:
                pending.append(spec_hash)

        supervised = self.jobs > 1 or (
            self.run_timeout is not None and self.run_timeout > 0
        )
        progress = {"done": done}

        def complete(
            spec_hash: str,
            envelope_json: Optional[str],
            failure: Optional[Dict[str, Any]],
            attempts: int,
            executor_tag: str,
        ) -> None:
            """Persist and record one terminal outcome (success or failure)."""
            spec = unique[spec_hash]
            if envelope_json is not None:
                envelope = json.loads(envelope_json)
                envelope["provenance"]["executor"] = executor_tag
                if attempts > 1:
                    envelope["provenance"]["attempts"] = attempts
                result = RunResult.from_envelope(envelope)
                stats.executed += 1
                if self.cache is not None:
                    self.cache.put(spec_hash, result.to_json().encode("utf-8"))
                if self.journal is not None:
                    self.journal.done(spec_hash, cached=False)
            else:
                result = RunResult(
                    spec=spec,
                    spec_hash=spec_hash,
                    payload={},
                    provenance={"executor": executor_tag, "attempts": attempts},
                    failure=failure,
                )
                stats.failed += 1
                if self.journal is not None:
                    self.journal.failed(spec_hash, failure or {})
                if self.obs is not None:
                    self.obs.metrics.counter("runner_failures_total").inc()
                    self.obs.events.runner_run_failed(
                        label=spec.label(),
                        spec_hash=spec_hash[:12],
                        failure_kind=(failure or {}).get("kind"),
                        error_type=(failure or {}).get("error_type"),
                        message=(failure or {}).get("message"),
                        attempts=attempts,
                        exit_signal=(failure or {}).get("signal"),
                    )
            results[spec_hash] = result
            progress["done"] += 1
            self._report(
                spec, spec_hash, progress["done"], len(unique), started,
                failed=result.failure is not None,
            )

        try:
            if pending and supervised:
                self._run_supervised(
                    [(h, unique[h]) for h in pending], complete
                )
            elif pending:
                self._run_serial([(h, unique[h]) for h in pending], complete)
        except KeyboardInterrupt:
            if self.journal is not None:
                self.journal.interrupted(
                    completed=stats.cache_hits + stats.executed,
                    failed=stats.failed,
                    total=len(unique),
                )
            self.stats = stats
            raise RunInterrupted(
                completed=stats.cache_hits + stats.executed,
                failed=stats.failed,
                total=len(unique),
                journal_path=self.journal.path if self.journal is not None else None,
            ) from None

        stats.wall_time_s = time.monotonic() - started
        self.stats = stats
        if self.obs is not None:
            self.obs.metrics.gauge("runner_wall_time_seconds").set(stats.wall_time_s)

        failures = [
            results[spec_hash]
            for spec_hash in dict.fromkeys(hashes)
            if results[spec_hash].failure is not None
        ]
        ordered = [results[spec_hash] for spec_hash in hashes]
        if failures and self.on_failure == "raise":
            first = failures[0]
            raise RunsFailedError(
                f"{len(failures)} of {len(unique)} run(s) failed after "
                f"retries; first: {first.spec.label()} "
                f"({(first.failure or {}).get('kind', '?')}: "
                f"{(first.failure or {}).get('message', '?')})",
                results=ordered,
                failures=failures,
            )

        # Accumulate instrumentation outputs once per unique run, in
        # first-appearance order (cached results included — their spans are
        # in the payload, so trace exports survive cache hits).
        if self.trace or self.profile:
            for spec_hash in dict.fromkeys(hashes):
                result = results[spec_hash]
                self.trace_records.extend(result.payload.get("trace_records", ()))
                profile = result.provenance.get("profile")
                if profile is not None:
                    self.profiles.append(profile)
        return ordered

    def profile_summary(self) -> Optional[Dict[str, Any]]:
        """Merge every accumulated per-run engine profile into one summary:
        counts/wall-times summed per event type and per phase path, queue
        high-water maxed, overhead counts/totals summed (fraction recomputed
        against the merged wall), memory counters summed with tracemalloc
        sites re-ranked across runs."""
        if not self.profiles:
            return None
        by_type: Dict[str, Dict[str, Any]] = {}
        phases: Dict[str, Dict[str, Any]] = {}
        events_total = 0
        high_water = 0
        wall_s = 0.0
        overhead_total = 0.0
        overhead_pairs = 0
        overhead_reads = 0
        memory: Optional[Dict[str, Any]] = None
        sites: Dict[str, Dict[str, Any]] = {}
        for profile in self.profiles:
            events_total += profile.get("events_total", 0)
            high_water = max(high_water, profile.get("queue_high_water", 0))
            wall_s += profile.get("wall_s", 0.0)
            for name, stats in profile.get("by_type", {}).items():
                merged = by_type.setdefault(name, {"count": 0, "wall_s": 0.0})
                merged["count"] += stats["count"]
                merged["wall_s"] += stats["wall_s"]
            for path, stats in (profile.get("phases") or {}).items():
                merged = phases.setdefault(path, {"count": 0, "wall_s": 0.0})
                merged["count"] += stats["count"]
                merged["wall_s"] += stats["wall_s"]
            overhead = profile.get("overhead") or {}
            overhead_total += overhead.get("total_s", 0.0)
            overhead_pairs += overhead.get("phase_pairs", 0)
            overhead_reads += overhead.get("clock_reads", 0)
            run_memory = profile.get("memory")
            if run_memory:
                if memory is None:
                    memory = {
                        "gc_collections": 0, "gc_collected": 0,
                        "gc_uncollectable": 0, "allocated_blocks_delta": 0,
                        "tracemalloc": None,
                    }
                for key in ("gc_collections", "gc_collected",
                            "gc_uncollectable", "allocated_blocks_delta"):
                    memory[key] += run_memory.get(key, 0)
                for site in ((run_memory.get("tracemalloc") or {}).get("top")
                             or ()):
                    merged = sites.setdefault(
                        site["site"], {"site": site["site"],
                                       "size_kb": 0.0, "count": 0}
                    )
                    merged["size_kb"] = round(
                        merged["size_kb"] + site["size_kb"], 1
                    )
                    merged["count"] += site["count"]
        if memory is not None and sites:
            top = sorted(
                sites.values(), key=lambda s: (-s["size_kb"], s["site"])
            )[:10]
            memory["tracemalloc"] = {"top": top, "sites": len(sites)}
        summary: Dict[str, Any] = {
            "runs": len(self.profiles),
            "events_total": events_total,
            "queue_high_water": high_water,
            "wall_s": wall_s,
            "by_type": dict(sorted(by_type.items())),
            "phases": dict(sorted(phases.items())),
            "overhead": {
                "phase_pairs": overhead_pairs,
                "clock_reads": overhead_reads,
                "total_s": overhead_total,
                "fraction_of_wall": (
                    overhead_total / wall_s if wall_s else 0.0
                ),
            },
            "memory": memory,
        }
        from repro.simnet.engine import phase_coverage

        summary["phase_coverage"] = phase_coverage(summary)
        return summary

    def run_grid(
        self,
        base: Any,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        **expand_kwargs: Any,
    ) -> List[RunResult]:
        """`expand_grid` + `run` in one call."""
        return self.run(expand_grid(base, axes, **expand_kwargs))

    # -- internals ---------------------------------------------------------

    def _timeout_for(self, spec: Any) -> Optional[float]:
        """Effective wall-clock timeout for one spec: explicit value, or a
        generous default scaled from the spec's expected sim duration;
        ``run_timeout=0`` disables deadlines entirely."""
        if self.run_timeout is not None:
            return self.run_timeout if self.run_timeout > 0 else None
        return default_run_timeout(spec)

    def _on_retry(
        self, spec_hash: str, attempt: int, failure: Dict[str, Any],
        backoff_s: float,
    ) -> None:
        self.stats.retried += 1
        if self.obs is not None:
            self.obs.metrics.counter("runner_retries_total").inc()
            self.obs.events.runner_run_retry(
                spec_hash=spec_hash[:12],
                attempt=attempt,
                failure_kind=failure.get("kind"),
                error_type=failure.get("error_type"),
                backoff_s=round(backoff_s, 3),
            )
        if self.progress is not None:
            self.progress(
                f"retry  {spec_hash[:12]} attempt {attempt} failed "
                f"({failure.get('kind')}: {failure.get('error_type')}); "
                f"backing off {backoff_s:.1f}s"
            )

    def _on_cache_corrupt(self, spec_hash: str, reason: str) -> None:
        if self.obs is not None:
            self.obs.events.cache_corrupt(
                spec_hash=spec_hash[:12], reason=reason
            )
        if self.progress is not None:
            self.progress(
                f"warning: evicted corrupt cache entry {spec_hash[:12]} "
                f"({reason}); recomputing"
            )

    def _run_supervised(
        self,
        work: List[Any],
        complete: Callable[..., None],
    ) -> None:
        """Fan pending specs out over supervised worker processes."""
        supervisor = Supervisor(
            jobs=self.jobs,
            retries=self.retries,
            backoff_base=self.backoff_base,
            on_retry=self._on_retry,
        )

        def on_done(outcome: Any) -> None:
            complete(
                outcome.spec_hash,
                outcome.envelope_json,
                outcome.failure,
                outcome.attempts,
                "supervised",
            )

        supervisor.run(
            [
                (
                    spec_hash,
                    canonical_json(spec.to_dict()),
                    self._timeout_for(spec),
                )
                for spec_hash, spec in work
            ],
            on_done,
        )

    def _run_serial(
        self,
        work: List[Any],
        complete: Callable[..., None],
    ) -> None:
        """In-process execution (no timeouts — nothing can kill a hung run
        from inside its own thread) with exception-level retry."""
        for spec_hash, spec in work:
            attempt = 1
            while True:
                try:
                    envelope_json = _execute_envelope_json(
                        canonical_json(spec.to_dict())
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    failure = failure_from_exception(exc, attempts=attempt)
                    if attempt <= self.retries:
                        backoff = backoff_delay(attempt, base=self.backoff_base)
                        self._on_retry(spec_hash, attempt, failure, backoff)
                        time.sleep(backoff)
                        attempt += 1
                        continue
                    complete(spec_hash, None, failure, attempt, "serial")
                    break
                complete(spec_hash, envelope_json, None, attempt, "serial")
                break

    def _report(
        self,
        spec: Any,
        spec_hash: str,
        done: int,
        total: int,
        started: float,
        *,
        cached: bool = False,
        failed: bool = False,
    ) -> None:
        elapsed = time.monotonic() - started
        eta = (elapsed / done) * (total - done) if done else 0.0
        if self.obs is not None:
            self.obs.metrics.counter("runner_runs_total").inc()
            if cached:
                self.obs.metrics.counter("runner_cache_hits_total").inc()
            self.obs.metrics.gauge("runner_eta_seconds").set(eta)
            if not failed:
                self.obs.events.emit(
                    "runner_run_completed",
                    label=spec.label(),
                    spec_hash=spec_hash[:12],
                    cached=cached,
                    done=done,
                    total=total,
                )
        if self.progress is not None:
            tag = "cache" if cached else ("FAIL" if failed else "run")
            self.progress(
                f"[{done}/{total}] {tag:<5} {spec.label()} "
                f"({elapsed:.1f}s elapsed, eta {eta:.0f}s)"
            )
