"""The Runner: grid expansion, pooled execution, and result envelopes.

The paper's evaluation is a grid of independent simulation runs — policy ×
size class × seed × probing interval × fault scenario.  The Runner executes
any list of specs (see :mod:`repro.runner.spec`) either serially or on a
``ProcessPoolExecutor``, with:

* **per-run process isolation** — workers use the ``spawn`` start method
  (no inherited parent state) and, where the interpreter supports it, one
  process per run;
* **determinism** — a run's payload depends only on its spec; serial and
  parallel executions of the same grid produce byte-identical payloads
  (asserted by ``repro bench-runner`` and the CI bench-smoke job);
* **content-addressed caching** — completed envelopes land in
  ``.runcache/<hash>.json`` and repeated sweeps skip already-computed cells;
* **progress/ETA** — wall-clock progress lines via a callback plus metrics
  and events on an optional :class:`repro.obs.Observability` hub.

Every experiment driver (comparison, fault scenarios, probing sweep,
sensitivity, calibration, ECDF) is a thin grid definition over this module.
"""

from __future__ import annotations

import itertools
import json
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.runner.cache import ResultCache
from repro.runner.spec import (
    CalibrationSpec,
    RunSpec,
    canonical_json,
    spec_from_dict,
)
from repro.simnet.random import derive_seed

__all__ = [
    "RunResult",
    "Runner",
    "RunnerStats",
    "expand_grid",
    "execute_spec",
]


# ---------------------------------------------------------------------------
# Result envelope
# ---------------------------------------------------------------------------

@dataclass
class RunResult:
    """One completed run: payload plus provenance, content-addressed.

    ``payload`` is the deterministic part (metrics, per-task records, obs
    exports) — byte-identical across serial/parallel/cached executions of
    the same spec.  ``provenance`` records how this particular execution
    happened (code version, wall time, executor) and is excluded from
    determinism comparisons.  ``raw`` holds the exact cached bytes when the
    result came off disk."""

    spec: Any
    spec_hash: str
    payload: Dict[str, Any]
    provenance: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False
    raw: Optional[bytes] = None

    def payload_json(self) -> str:
        """Canonical JSON of the deterministic payload."""
        return canonical_json(self.payload)

    def to_envelope(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "payload": self.payload,
            "provenance": self.provenance,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_envelope())

    @classmethod
    def from_envelope(
        cls,
        envelope: Dict[str, Any],
        *,
        from_cache: bool = False,
        raw: Optional[bytes] = None,
    ) -> "RunResult":
        return cls(
            spec=spec_from_dict(envelope["spec"]),
            spec_hash=envelope["spec_hash"],
            payload=envelope["payload"],
            provenance=dict(envelope.get("provenance", {})),
            from_cache=from_cache,
            raw=raw,
        )

    # -- typed views -------------------------------------------------------

    def experiment_result(self) -> Any:
        """Rebuild the full :class:`ExperimentResult` for this cell."""
        from repro.experiments.export import result_from_dict

        if not isinstance(self.spec, RunSpec):
            raise ExperimentError(
                f"spec kind {type(self.spec).__name__} is not an experiment"
            )
        return result_from_dict(self.payload, self.spec.to_config())

    def calibration_point(self) -> Any:
        from repro.experiments.calibration import CalibrationPoint

        if not isinstance(self.spec, CalibrationSpec):
            raise ExperimentError(
                f"spec kind {type(self.spec).__name__} is not a calibration run"
            )
        return CalibrationPoint(**self.payload["calibration"])

    def obs_records(self) -> List[Dict[str, Any]]:
        """Observability records captured by this run ([] for plain runs)."""
        return list(self.payload.get("obs_records", ()))

    def trace_records(self) -> List[Dict[str, Any]]:
        """Causal span records captured by this run ([] unless traced)."""
        return list(self.payload.get("trace_records", ()))

    def profile(self) -> Optional[Dict[str, Any]]:
        """Engine profile summary, or None.  Lives in provenance: handler
        wall-times are nondeterministic and must not affect payload bytes."""
        return self.provenance.get("profile")


# ---------------------------------------------------------------------------
# Spec execution (runs in the worker process)
# ---------------------------------------------------------------------------

def execute_spec(spec: Any) -> Dict[str, Any]:
    """Execute one spec and return its deterministic payload.

    A profiled spec's engine profile rides back under the ``"_profile"``
    payload key temporarily; :func:`_execute_envelope_json` moves it into
    provenance because handler wall-times are nondeterministic.
    """
    profiler = None
    memory_capture = None
    if getattr(spec, "profile", False):
        from repro.obs.perf import MemoryCapture
        from repro.simnet.engine import EngineProfiler

        profiler = EngineProfiler()
        # gc counters always ride with a profile; allocation-site tracing
        # (tracemalloc) only when the spec opted in — it costs real time.
        memory_capture = MemoryCapture(
            tracemalloc_top=10 if getattr(spec, "mem_profile", False) else 0
        )
    if isinstance(spec, RunSpec):
        from repro.experiments.export import result_to_dict
        from repro.experiments.harness import run_experiment

        obs = None
        labels = spec.obs_run()
        sampled = getattr(spec, "sample_interval", None)
        if labels is not None or spec.trace or sampled is not None:
            from repro.obs import Observability

            if labels is None:
                # Instrumented run without explicit obs labels: synthesize
                # the grid identity so multi-cell exports stay separable.
                labels = {
                    "policy": spec.policy,
                    "size_class": spec.size_class,
                    "seed": spec.seed,
                }
            obs = Observability(
                run=labels, trace=spec.trace, sample_interval=sampled
            )
        if memory_capture is not None:
            memory_capture.start()
        result = run_experiment(spec.to_config(), obs=obs, profiler=profiler)
        if memory_capture is not None:
            profiler.memory = memory_capture.stop()
        payload = result_to_dict(result, include_tasks=True)
        if obs is not None and (spec.obs_run() is not None or sampled is not None):
            payload["obs_records"] = obs.snapshot_records()
        if obs is not None and spec.trace:
            payload["trace_records"] = obs.trace_records()
        if profiler is not None:
            payload["_profile"] = profiler.summary()
        return payload
    if isinstance(spec, CalibrationSpec):
        from dataclasses import asdict

        from repro.experiments.calibration import run_calibration

        if memory_capture is not None:
            memory_capture.start()
        point = run_calibration(
            spec.utilization,
            duration=spec.duration,
            rate_bps=spec.rate_bps,
            link_delay=spec.link_delay,
            probing_interval=spec.probing_interval,
            seed=spec.seed,
            profiler=profiler,
        )
        if memory_capture is not None:
            profiler.memory = memory_capture.stop()
        payload = {"calibration": asdict(point)}
        if profiler is not None:
            payload["_profile"] = profiler.summary()
        return payload
    raise ExperimentError(f"cannot execute spec of type {type(spec).__name__}")


def _execute_envelope_json(spec_json: str) -> str:
    """Worker entry point: spec JSON in, canonical envelope JSON out.

    Serial and pooled execution share this function so their envelopes are
    produced by the same code path; only ``provenance.wall_time_s`` (and the
    executor tag the parent stamps) can differ between them."""
    import repro

    spec = spec_from_dict(json.loads(spec_json))
    started = time.monotonic()
    payload = execute_spec(spec)
    wall = time.monotonic() - started
    provenance = {
        "code_version": repro.__version__,
        "wall_time_s": round(wall, 6),
    }
    # The engine profile is execution metadata (real wall-times), not part
    # of the deterministic payload.
    profile = payload.pop("_profile", None)
    if profile is not None:
        provenance["profile"] = profile
    envelope = {
        "spec": spec.to_dict(),
        "spec_hash": spec.content_hash(),
        "payload": payload,
        "provenance": provenance,
    }
    return canonical_json(envelope)


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------

def expand_grid(
    base: Any,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    repeats: Optional[int] = None,
    master_seed: Optional[int] = None,
) -> List[Any]:
    """Cross-product a base spec with per-field value lists.

    ``axes`` maps spec field names to the values to sweep (e.g.
    ``{"size_class": ["VS", "S"], "policy": ["aware", "nearest"]}``); axis
    order fixes expansion order, so grids are deterministic.  ``repeats``
    replaces each cell with ``repeats`` copies whose seeds derive from
    ``derive_seed(master_seed, "repeat:<i>")`` — a function of the master
    seed and repeat index only, so every policy (and any future axis) sees
    the same per-repeat seeds no matter how the grid is ordered."""
    axes = dict(axes or {})
    names = list(axes)
    cells: List[Any] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        cells.append(base.with_(**dict(zip(names, combo))))
    if repeats is None:
        return cells
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    root = master_seed if master_seed is not None else base.seed
    out: List[Any] = []
    for cell in cells:
        for i in range(repeats):
            out.append(cell.with_(seed=derive_seed(root, f"repeat:{i}")))
    return out


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

@dataclass
class RunnerStats:
    """Wall-clock accounting for one :meth:`Runner.run` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_time_s: float = 0.0


class Runner:
    """Execute spec lists serially or on a process pool, with caching.

    ``jobs=1`` runs in-process (no pool, no pickling).  ``jobs>1`` fans out
    over ``spawn``-started worker processes — one run per process where the
    interpreter supports ``max_tasks_per_child`` — so no run ever observes
    another's interpreter state.  ``cache`` (a :class:`ResultCache`) makes
    completed cells free on re-run.  ``progress`` receives one human line
    per completed run including an ETA; ``obs`` (a
    :class:`repro.obs.Observability`) additionally records runner metrics
    and per-run events."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[str], None]] = None,
        obs: Optional[Any] = None,
        trace: bool = False,
        profile: bool = False,
        mem_profile: bool = False,
        sample_interval: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.obs = obs
        # Instrumentation: stamp every incoming spec with these flags before
        # hashing (so traced/profiled/sampled cells never alias plain cache
        # entries) and accumulate the per-run outputs across run() calls.
        # mem_profile implies profile.
        self.trace = trace
        self.mem_profile = mem_profile
        self.profile = profile or mem_profile
        self.sample_interval = sample_interval
        self.trace_records: List[Dict[str, Any]] = []
        self.profiles: List[Dict[str, Any]] = []
        if obs is not None:
            started = time.monotonic()
            clock = lambda: time.monotonic() - started  # noqa: E731
            obs.metrics.bind_clock(clock)
            obs.events.bind_clock(clock)
        self.stats = RunnerStats()

    # -- public API --------------------------------------------------------

    def run(self, specs: Sequence[Any]) -> List[RunResult]:
        """Execute every spec; results come back in spec order.

        Duplicate specs (same content hash) execute once and share their
        result object."""
        started = time.monotonic()
        if self.trace or self.profile or self.sample_interval is not None:
            specs = [
                spec.instrumented(
                    trace=self.trace,
                    profile=self.profile,
                    mem_profile=self.mem_profile,
                    sample_interval=self.sample_interval,
                )
                for spec in specs
            ]
        hashes = [spec.content_hash() for spec in specs]
        stats = RunnerStats(total=len(specs))
        results: Dict[str, RunResult] = {}

        # Unique work, in first-appearance order.
        unique: Dict[str, Any] = {}
        for spec, spec_hash in zip(specs, hashes):
            unique.setdefault(spec_hash, spec)

        pending: List[str] = []
        done = 0
        for spec_hash, spec in unique.items():
            cached = self.cache.get(spec_hash) if self.cache is not None else None
            if cached is not None:
                results[spec_hash] = RunResult.from_envelope(
                    json.loads(cached), from_cache=True, raw=cached
                )
                stats.cache_hits += 1
                done += 1
                self._report(spec, spec_hash, done, len(unique), started, cached=True)
            else:
                pending.append(spec_hash)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                executor_tag = "process-pool"
                envelope_jsons = self._run_pool(
                    [(h, unique[h]) for h in pending],
                    done_offset=done,
                    total=len(unique),
                    started=started,
                )
            else:
                executor_tag = "serial"
                envelope_jsons = {}
                for spec_hash in pending:
                    spec = unique[spec_hash]
                    envelope_jsons[spec_hash] = _execute_envelope_json(
                        canonical_json(spec.to_dict())
                    )
                    done += 1
                    self._report(spec, spec_hash, done, len(unique), started)
            for spec_hash, envelope_json in envelope_jsons.items():
                envelope = json.loads(envelope_json)
                envelope["provenance"]["executor"] = executor_tag
                result = RunResult.from_envelope(envelope)
                results[spec_hash] = result
                stats.executed += 1
                if self.cache is not None:
                    self.cache.put(spec_hash, result.to_json().encode("utf-8"))

        stats.wall_time_s = time.monotonic() - started
        self.stats = stats
        if self.obs is not None:
            self.obs.metrics.gauge("runner_wall_time_seconds").set(stats.wall_time_s)
        # Accumulate instrumentation outputs once per unique run, in
        # first-appearance order (cached results included — their spans are
        # in the payload, so trace exports survive cache hits).
        if self.trace or self.profile:
            for spec_hash in dict.fromkeys(hashes):
                result = results[spec_hash]
                self.trace_records.extend(result.payload.get("trace_records", ()))
                profile = result.provenance.get("profile")
                if profile is not None:
                    self.profiles.append(profile)
        return [results[spec_hash] for spec_hash in hashes]

    def profile_summary(self) -> Optional[Dict[str, Any]]:
        """Merge every accumulated per-run engine profile into one summary:
        counts/wall-times summed per event type and per phase path, queue
        high-water maxed, overhead counts/totals summed (fraction recomputed
        against the merged wall), memory counters summed with tracemalloc
        sites re-ranked across runs."""
        if not self.profiles:
            return None
        by_type: Dict[str, Dict[str, Any]] = {}
        phases: Dict[str, Dict[str, Any]] = {}
        events_total = 0
        high_water = 0
        wall_s = 0.0
        overhead_total = 0.0
        overhead_pairs = 0
        overhead_reads = 0
        memory: Optional[Dict[str, Any]] = None
        sites: Dict[str, Dict[str, Any]] = {}
        for profile in self.profiles:
            events_total += profile.get("events_total", 0)
            high_water = max(high_water, profile.get("queue_high_water", 0))
            wall_s += profile.get("wall_s", 0.0)
            for name, stats in profile.get("by_type", {}).items():
                merged = by_type.setdefault(name, {"count": 0, "wall_s": 0.0})
                merged["count"] += stats["count"]
                merged["wall_s"] += stats["wall_s"]
            for path, stats in (profile.get("phases") or {}).items():
                merged = phases.setdefault(path, {"count": 0, "wall_s": 0.0})
                merged["count"] += stats["count"]
                merged["wall_s"] += stats["wall_s"]
            overhead = profile.get("overhead") or {}
            overhead_total += overhead.get("total_s", 0.0)
            overhead_pairs += overhead.get("phase_pairs", 0)
            overhead_reads += overhead.get("clock_reads", 0)
            run_memory = profile.get("memory")
            if run_memory:
                if memory is None:
                    memory = {
                        "gc_collections": 0, "gc_collected": 0,
                        "gc_uncollectable": 0, "allocated_blocks_delta": 0,
                        "tracemalloc": None,
                    }
                for key in ("gc_collections", "gc_collected",
                            "gc_uncollectable", "allocated_blocks_delta"):
                    memory[key] += run_memory.get(key, 0)
                for site in ((run_memory.get("tracemalloc") or {}).get("top")
                             or ()):
                    merged = sites.setdefault(
                        site["site"], {"site": site["site"],
                                       "size_kb": 0.0, "count": 0}
                    )
                    merged["size_kb"] = round(
                        merged["size_kb"] + site["size_kb"], 1
                    )
                    merged["count"] += site["count"]
        if memory is not None and sites:
            top = sorted(
                sites.values(), key=lambda s: (-s["size_kb"], s["site"])
            )[:10]
            memory["tracemalloc"] = {"top": top, "sites": len(sites)}
        summary: Dict[str, Any] = {
            "runs": len(self.profiles),
            "events_total": events_total,
            "queue_high_water": high_water,
            "wall_s": wall_s,
            "by_type": dict(sorted(by_type.items())),
            "phases": dict(sorted(phases.items())),
            "overhead": {
                "phase_pairs": overhead_pairs,
                "clock_reads": overhead_reads,
                "total_s": overhead_total,
                "fraction_of_wall": (
                    overhead_total / wall_s if wall_s else 0.0
                ),
            },
            "memory": memory,
        }
        from repro.simnet.engine import phase_coverage

        summary["phase_coverage"] = phase_coverage(summary)
        return summary

    def run_grid(
        self,
        base: Any,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        **expand_kwargs: Any,
    ) -> List[RunResult]:
        """`expand_grid` + `run` in one call."""
        return self.run(expand_grid(base, axes, **expand_kwargs))

    # -- internals ---------------------------------------------------------

    def _run_pool(
        self,
        work: List[Any],
        *,
        done_offset: int,
        total: int,
        started: float,
    ) -> Dict[str, str]:
        """Fan pending specs out over spawn-started worker processes."""
        pool_kwargs: Dict[str, Any] = {}
        import multiprocessing

        pool_kwargs["mp_context"] = multiprocessing.get_context("spawn")
        if sys.version_info >= (3, 11):
            # One run per worker process: full interpreter isolation.
            pool_kwargs["max_tasks_per_child"] = 1
        out: Dict[str, str] = {}
        done = done_offset
        with ProcessPoolExecutor(max_workers=self.jobs, **pool_kwargs) as pool:
            futures = {
                pool.submit(
                    _execute_envelope_json, canonical_json(spec.to_dict())
                ): (spec_hash, spec)
                for spec_hash, spec in work
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec_hash, spec = futures[future]
                    out[spec_hash] = future.result()  # re-raises worker errors
                    done += 1
                    self._report(spec, spec_hash, done, total, started)
        return out

    def _report(
        self,
        spec: Any,
        spec_hash: str,
        done: int,
        total: int,
        started: float,
        *,
        cached: bool = False,
    ) -> None:
        elapsed = time.monotonic() - started
        eta = (elapsed / done) * (total - done) if done else 0.0
        if self.obs is not None:
            self.obs.metrics.counter("runner_runs_total").inc()
            if cached:
                self.obs.metrics.counter("runner_cache_hits_total").inc()
            self.obs.metrics.gauge("runner_eta_seconds").set(eta)
            self.obs.events.emit(
                "runner_run_completed",
                label=spec.label(),
                spec_hash=spec_hash[:12],
                cached=cached,
                done=done,
                total=total,
            )
        if self.progress is not None:
            tag = "cache" if cached else "run"
            self.progress(
                f"[{done}/{total}] {tag:<5} {spec.label()} "
                f"({elapsed:.1f}s elapsed, eta {eta:.0f}s)"
            )
