"""Content-addressed, on-disk result cache with self-verifying reads.

Each completed run is stored as ``<root>/<spec-hash>.json`` — the full
:class:`~repro.runner.runner.RunResult` envelope, byte-for-byte — alongside
a ``<spec-hash>.json.sha256`` sidecar holding the SHA-256 of those exact
bytes.  The spec hash covers everything that can change the output
(including fault-plan *contents* and calibration-curve knots), so a hit can
be trusted blindly and a repeated sweep skips every already-computed cell.

Crash safety is defense in depth:

* **writes** are atomic (temp file + ``os.replace``) for both the entry and
  its sidecar, so a killed sweep never leaves a truncated entry under a
  final name;
* **reads** verify the stored bytes against the sidecar checksum; an entry
  whose bytes don't hash to the recorded digest (bit rot, torn write from a
  pre-sidecar writer, hand editing) is **evicted** — deleted with a warning
  through ``on_corrupt`` — and reported as a miss so the run recomputes;
* entries written before sidecars existed (no ``.sha256`` file) fall back
  to JSON-parse + filed-under-the-right-hash validation, the original
  contract; failures there also evict.

A misfiled-but-intact entry (valid envelope naming a different hash) is a
plain miss, not corruption: the bytes are fine, they're just the answer to
a different question.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Optional

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

DEFAULT_CACHE_DIR = ".runcache"

_SIDECAR_SUFFIX = ".sha256"


class ResultCache:
    """A directory of ``<spec-hash>.json`` result envelopes.

    ``on_corrupt(spec_hash, reason)`` is called once per evicted entry; the
    runner wires it to a ``cache_corrupt`` warning event."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        *,
        on_corrupt: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.on_corrupt = on_corrupt

    def path(self, spec_hash: str) -> str:
        return os.path.join(self.root, f"{spec_hash}.json")

    def sidecar_path(self, spec_hash: str) -> str:
        return self.path(spec_hash) + _SIDECAR_SUFFIX

    # -- internal helpers --------------------------------------------------

    def _atomic_write(self, final_path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, final_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _evict(self, spec_hash: str, reason: str) -> None:
        """Delete a corrupt entry (and sidecar) and report it."""
        for path in (self.path(spec_hash), self.sidecar_path(spec_hash)):
            try:
                os.unlink(path)
            except OSError:
                pass
        self.evictions += 1
        if self.on_corrupt is not None:
            self.on_corrupt(spec_hash, reason)

    def _validate(self, spec_hash: str, data: bytes) -> Optional[str]:
        """None if ``data`` is a trustworthy entry for ``spec_hash``; an
        eviction reason if it is corrupt; ``"misfiled"`` (a plain miss, no
        eviction) if intact but filed under the wrong hash."""
        expected = self._read_sidecar(spec_hash)
        if expected is not None:
            actual = hashlib.sha256(data).hexdigest()
            if actual != expected:
                return (
                    f"checksum mismatch (stored {expected[:12]}…, "
                    f"actual {actual[:12]}…)"
                )
        # Structural validation: always required (a checksummed entry can
        # still be misfiled — intact bytes filed under the wrong name);
        # for legacy entries without a sidecar it is the only validation.
        try:
            envelope = json.loads(data)
        except json.JSONDecodeError as exc:
            return f"invalid JSON ({exc.msg} at char {exc.pos})"
        if not isinstance(envelope, dict):
            return "envelope is not a JSON object"
        if envelope.get("spec_hash") != spec_hash:
            return "misfiled"
        return None

    def _read_sidecar(self, spec_hash: str) -> Optional[str]:
        try:
            with open(self.sidecar_path(spec_hash), "r", encoding="ascii") as fh:
                digest = fh.read().strip()
        except (OSError, UnicodeDecodeError):
            return None
        return digest if len(digest) == 64 else None

    # -- public API --------------------------------------------------------

    def get(self, spec_hash: str) -> Optional[bytes]:
        """The exact bytes stored for ``spec_hash``, or None on a miss.

        Returning the raw bytes (rather than a parsed object) is the cache's
        contract: a hit is byte-identical to what the original run wrote.
        Bytes are checksum-verified against the sidecar before being served;
        a corrupt entry is evicted and reported as a miss."""
        try:
            with open(self.path(spec_hash), "rb") as fh:
                data = fh.read()
        except OSError:
            self.misses += 1
            return None
        reason = self._validate(spec_hash, data)
        if reason == "misfiled":
            # Filed under the wrong name or hand-edited into a different
            # (valid) envelope: not this spec's answer, but not garbage
            # either — leave it alone and recompute.
            self.misses += 1
            return None
        if reason is not None:
            self._evict(spec_hash, reason)
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, spec_hash: str, data: bytes) -> None:
        """Atomically store ``data`` (and its checksum) for ``spec_hash``.

        The entry lands before the sidecar; a crash between the two leaves
        an entry validated by the legacy JSON-parse path (or, if a stale
        sidecar survives from an older entry, a checksum mismatch that
        evicts and recomputes) — conservative either way, never a wrong
        result served as a hit."""
        os.makedirs(self.root, exist_ok=True)
        # Remove any stale sidecar first so a crash after the entry write
        # can't pair new bytes with an old digest.
        try:
            os.unlink(self.sidecar_path(spec_hash))
        except OSError:
            pass
        self._atomic_write(self.path(spec_hash), data)
        digest = hashlib.sha256(data).hexdigest()
        self._atomic_write(
            self.sidecar_path(spec_hash), (digest + "\n").encode("ascii")
        )

    def verify(self) -> Dict[str, Any]:
        """Scan every entry, evicting corrupt ones.

        Returns ``{"checked": n, "ok": n, "evicted": [(hash, reason), ...],
        "unverified": [hash, ...]}`` where ``unverified`` lists legacy
        entries that passed structural validation but have no checksum."""
        evicted: List[Any] = []
        unverified: List[str] = []
        checked = 0
        for spec_hash in self.entries():
            checked += 1
            try:
                with open(self.path(spec_hash), "rb") as fh:
                    data = fh.read()
            except OSError as exc:
                self._evict(spec_hash, f"unreadable ({exc.__class__.__name__})")
                evicted.append((spec_hash, "unreadable"))
                continue
            reason = self._validate(spec_hash, data)
            if reason == "misfiled" or (
                reason is None and self._read_sidecar(spec_hash) is None
            ):
                unverified.append(spec_hash)
            elif reason is not None:
                self._evict(spec_hash, reason)
                evicted.append((spec_hash, reason))
        return {
            "checked": checked,
            "ok": checked - len(evicted),
            "evicted": evicted,
            "unverified": unverified,
        }

    def entries(self) -> List[str]:
        """Spec hashes currently cached (sorted)."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json")
        )

    def size_bytes(self) -> int:
        total = 0
        for spec_hash in self.entries():
            try:
                total += os.path.getsize(self.path(spec_hash))
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry (and sidecar); returns how many entries were
        removed (sidecars don't count)."""
        removed = 0
        for spec_hash in self.entries():
            try:
                os.unlink(self.path(spec_hash))
                removed += 1
            except OSError:
                pass
            try:
                os.unlink(self.sidecar_path(spec_hash))
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache root={self.root!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
