"""Content-addressed, on-disk result cache.

Each completed run is stored as ``<root>/<spec-hash>.json`` — the full
:class:`~repro.runner.runner.RunResult` envelope, byte-for-byte.  The spec
hash covers everything that can change the output (including fault-plan
*contents* and calibration-curve knots), so a hit can be trusted blindly and
a repeated sweep skips every already-computed cell.

Writes are atomic (temp file + rename) so a killed sweep never leaves a
truncated entry; reads validate that the stored envelope names the hash it
is filed under and treat anything corrupt as a miss.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import List, Optional

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

DEFAULT_CACHE_DIR = ".runcache"


class ResultCache:
    """A directory of ``<spec-hash>.json`` result envelopes."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def path(self, spec_hash: str) -> str:
        return os.path.join(self.root, f"{spec_hash}.json")

    def get(self, spec_hash: str) -> Optional[bytes]:
        """The exact bytes stored for ``spec_hash``, or None on a miss.

        Returning the raw bytes (rather than a parsed object) is the cache's
        contract: a hit is byte-identical to what the original run wrote."""
        try:
            with open(self.path(spec_hash), "rb") as fh:
                data = fh.read()
        except OSError:
            self.misses += 1
            return None
        try:
            envelope = json.loads(data)
        except json.JSONDecodeError:
            self.misses += 1
            return None
        if not isinstance(envelope, dict) or envelope.get("spec_hash") != spec_hash:
            # Filed under the wrong name or hand-edited: recompute.
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, spec_hash: str, data: bytes) -> None:
        """Atomically store ``data`` as the entry for ``spec_hash``."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, self.path(spec_hash))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entries(self) -> List[str]:
        """Spec hashes currently cached (sorted)."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )

    def size_bytes(self) -> int:
        total = 0
        for spec_hash in self.entries():
            try:
                total += os.path.getsize(self.path(spec_hash))
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for spec_hash in self.entries():
            try:
                os.unlink(self.path(spec_hash))
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache root={self.root!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
