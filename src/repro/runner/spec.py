"""Declarative, hashable run specifications.

A spec is the *complete* recipe for one simulation run — everything that can
change the output is a field, everything is JSON-native, and the canonical
JSON form (sorted keys, compact separators) is hashed with SHA-256 to give
the run a content address.  Two consequences the runner builds on:

* **caching** — a spec hash names a result file (``.runcache/<hash>.json``);
  any field change, including the *contents* of an inlined fault plan or
  calibration curve, changes the hash and forces a recompute;
* **pairing** — :meth:`RunSpec.pairing_key` hashes only the fields that
  define workload/congestion identity (never the policy), so paired-seed
  derivation cannot be perturbed by which policies a grid sweeps or in what
  order.

Two spec kinds exist: :class:`RunSpec` (a full harness experiment — the
Fig. 5–9 grid cell) and :class:`CalibrationSpec` (one Fig. 3 utilization
level on the dumbbell topology).  ``spec_from_dict`` dispatches on the
``kind`` field so cache files and worker processes stay self-describing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.edge.background import TrafficScenario
from repro.edge.task import SizeClass
from repro.errors import ExperimentError

__all__ = [
    "canonical_json",
    "content_hash",
    "RunSpec",
    "CalibrationSpec",
    "spec_from_dict",
    "SPEC_KINDS",
]

_SIZE_CLASSES = {c.label: c for c in SizeClass}


def canonical_json(obj: Any) -> str:
    """The one canonical JSON form: sorted keys, compact separators, no NaN.

    Hashes, cache files, and byte-identity comparisons all go through this
    function so there is exactly one serialization to reason about."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def content_hash(obj: Any) -> str:
    """SHA-256 over the canonical JSON form (hex)."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def _scenario_to_dict(scenario: TrafficScenario) -> Dict[str, Any]:
    return {
        "name": scenario.name,
        "slots": scenario.slots,
        "duration_choices": list(scenario.duration_choices),
        "gap_choices": list(scenario.gap_choices),
        "stagger": scenario.stagger,
        "rate_fraction_range": list(scenario.rate_fraction_range),
    }


def _scenario_from_dict(data: Dict[str, Any]) -> TrafficScenario:
    return TrafficScenario(
        name=data["name"],
        slots=data["slots"],
        duration_choices=tuple(data["duration_choices"]),
        gap_choices=tuple(data["gap_choices"]),
        stagger=data["stagger"],
        rate_fraction_range=tuple(data["rate_fraction_range"]),
    )


@dataclass(frozen=True)
class RunSpec:
    """One experiment grid cell: topology workload, policy, probing config,
    fault plan (inlined by contents), seed, and scale — the full recipe for
    :func:`repro.experiments.harness.run_experiment`.

    Composite fields are stored as canonical JSON strings (``scenario_json``,
    ``fault_plan_json``, ``curve_knots``) so the spec itself stays frozen and
    hashable while the hash still covers their complete contents.
    """

    KIND = "experiment"

    policy: str = "aware"
    metric: str = "delay"
    workload: str = "serverless"
    size_class: str = "S"
    seed: int = 0
    # ExperimentScale fields, flattened.
    size_scale: float = 0.2
    total_tasks: int = 36
    mean_interarrival: float = 0.8
    time_scale: float = 0.2
    # Background congestion scenario, by contents.
    scenario_json: str = field(default="")
    # Probing configuration.
    probing_interval: float = 0.1
    probe_layout: str = "mesh"
    probe_size: Optional[int] = None
    # Scheduler knobs.
    k: float = 0.020
    selection: str = "top_k"
    curve_knots: Optional[Tuple[Tuple[float, float], ...]] = None
    deadline_slack: Optional[float] = None
    scheduler_processing_delay: float = 0.5e-3
    snmp_poll_interval: float = 30.0
    # Fault injection, by contents (not by scenario name): editing one event
    # inside a plan file must change the hash.
    fault_plan_json: Optional[str] = None
    degradation: bool = True
    task_retry_timeout: float = 4.0
    task_max_attempts: int = 4
    quarantine_ttl: float = 3.0
    # Observability: canonical-JSON run labels, or None for a plain run.
    # Part of the hash on purpose — an obs run carries extra payload, so it
    # must not alias a plain run's cache entry.
    obs_run_json: Optional[str] = None
    # Instrumentation flags, stamped by the runner (never persisted into
    # ExperimentConfig).  In the hash on purpose: a traced run's payload
    # carries span records and must not alias a plain run's cache entry; a
    # profiled run keeps its (nondeterministic) profile in provenance, so
    # profiled and plain runs must not share cache files either.
    trace: bool = False
    profile: bool = False
    # Memory attribution (tracemalloc top allocation sites) on top of the
    # engine profile; implies profile at the runner layer.  In the hash for
    # the same no-aliasing reason as the other instrumentation flags, even
    # though its output lives in provenance: tracemalloc changes allocator
    # timing enough that sharing cache entries with plain runs would let a
    # --mem-profile invocation return non-mem-profiled provenance.
    mem_profile: bool = False
    # Periodic state sampling: sim-seconds between sampler ticks, or None
    # for no sampling.  In the hash: a sampled run's payload carries
    # time-series (and possibly alert) records, so it must not alias a
    # plain run's cache entry.
    sample_interval: Optional[float] = None
    # Telemetry-quality observatory (coverage ledger, freshness digests,
    # decision-error attribution).  In the hash: an observed run's payload
    # carries the kind:"telquality" record, so it must not alias a plain
    # run's cache entry.
    telquality: bool = False
    # Counterfactual decision observatory (per-decision regret, policy
    # replay, staleness attribution).  In the hash for the same reason: an
    # observed payload carries the kind:"whatif" record.
    whatif: bool = False

    def __post_init__(self) -> None:
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ExperimentError(
                f"sample_interval must be positive, got {self.sample_interval}"
            )
        if self.size_class not in _SIZE_CLASSES:
            raise ExperimentError(
                f"unknown size class {self.size_class!r}; "
                f"options: {sorted(_SIZE_CLASSES)}"
            )
        if not self.scenario_json:
            from repro.edge.background import DEFAULT_SCENARIO

            object.__setattr__(
                self, "scenario_json",
                canonical_json(_scenario_to_dict(DEFAULT_SCENARIO)),
            )
        if self.curve_knots is not None:
            object.__setattr__(
                self, "curve_knots",
                tuple((float(q), float(u)) for q, u in self.curve_knots),
            )

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_config(
        cls, config: "Any", *, obs_run: Optional[Dict[str, Any]] = None
    ) -> "RunSpec":
        """Build a spec from an :class:`ExperimentConfig` (and back via
        :meth:`to_config` — the round trip is exact)."""
        return cls(
            policy=config.policy,
            metric=config.metric,
            workload=config.workload,
            size_class=config.size_class.label,
            seed=config.seed,
            size_scale=config.scale.size_scale,
            total_tasks=config.scale.total_tasks,
            mean_interarrival=config.scale.mean_interarrival,
            time_scale=config.scale.time_scale,
            scenario_json=canonical_json(_scenario_to_dict(config.scenario)),
            probing_interval=config.probing_interval,
            probe_layout=config.probe_layout,
            probe_size=config.probe_size,
            k=config.k,
            selection=config.selection,
            curve_knots=(
                tuple(config.curve.knots) if config.curve is not None else None
            ),
            deadline_slack=config.deadline_slack,
            scheduler_processing_delay=config.scheduler_processing_delay,
            snmp_poll_interval=config.snmp_poll_interval,
            fault_plan_json=(
                canonical_json(config.fault_plan.to_dict())
                if config.fault_plan is not None
                else None
            ),
            degradation=config.degradation,
            task_retry_timeout=config.task_retry_timeout,
            task_max_attempts=config.task_max_attempts,
            quarantine_ttl=config.quarantine_ttl,
            obs_run_json=canonical_json(obs_run) if obs_run is not None else None,
        )

    def to_config(self) -> "Any":
        from repro.core.estimators import QdepthUtilizationCurve
        from repro.experiments.harness import ExperimentConfig, ExperimentScale
        from repro.faults import FaultPlan

        return ExperimentConfig(
            policy=self.policy,
            metric=self.metric,
            workload=self.workload,
            size_class=_SIZE_CLASSES[self.size_class],
            seed=self.seed,
            scenario=_scenario_from_dict(json.loads(self.scenario_json)),
            scale=ExperimentScale(
                size_scale=self.size_scale,
                total_tasks=self.total_tasks,
                mean_interarrival=self.mean_interarrival,
                time_scale=self.time_scale,
            ),
            probing_interval=self.probing_interval,
            probe_layout=self.probe_layout,
            probe_size=self.probe_size,
            k=self.k,
            selection=self.selection,
            curve=(
                QdepthUtilizationCurve(list(self.curve_knots))
                if self.curve_knots is not None
                else None
            ),
            deadline_slack=self.deadline_slack,
            scheduler_processing_delay=self.scheduler_processing_delay,
            snmp_poll_interval=self.snmp_poll_interval,
            fault_plan=(
                FaultPlan.from_json(self.fault_plan_json)
                if self.fault_plan_json is not None
                else None
            ),
            degradation=self.degradation,
            task_retry_timeout=self.task_retry_timeout,
            task_max_attempts=self.task_max_attempts,
            quarantine_ttl=self.quarantine_ttl,
        )

    def obs_run(self) -> Optional[Dict[str, Any]]:
        """The run labels for this cell's observability hub, or None."""
        return json.loads(self.obs_run_json) if self.obs_run_json else None

    # -- identity ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.KIND}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "curve_knots" and value is not None:
                value = [list(pair) for pair in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        payload = {k: v for k, v in data.items() if k != "kind"}
        if payload.get("curve_knots") is not None:
            payload["curve_knots"] = tuple(
                tuple(pair) for pair in payload["curve_knots"]
            )
        return cls(**payload)

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        return content_hash(self.to_dict())

    def pairing_key(self) -> str:
        """Hash of the workload/congestion identity only.

        Policy, ranking metric, scheduler knobs, and observability labels are
        excluded: cells that the paper's paired methodology compares task-by-
        task share this key, so anything derived from it (per-repeat seeds,
        pairing checks) is identical across the compared policies."""
        return content_hash(
            {
                "workload": self.workload,
                "size_class": self.size_class,
                "seed": self.seed,
                "size_scale": self.size_scale,
                "total_tasks": self.total_tasks,
                "mean_interarrival": self.mean_interarrival,
                "time_scale": self.time_scale,
                "scenario": self.scenario_json,
                "fault_plan": self.fault_plan_json,
            }
        )

    def expected_sim_duration(self) -> float:
        """Rough expected simulated seconds for this run, used to scale the
        default per-run wall-clock timeout (see
        :func:`repro.runner.supervisor.default_run_timeout`).  The arrival
        process dominates: ``total_tasks * mean_interarrival`` plus slack
        for the tail of in-flight tasks to drain."""
        return self.total_tasks * self.mean_interarrival + 30.0

    def label(self) -> str:
        """Short human label for progress lines."""
        return f"{self.policy}/{self.size_class} seed={self.seed}"

    def with_(self, **changes: Any) -> "RunSpec":
        """`dataclasses.replace` spelled as a method, for grid expansion."""
        return replace(self, **changes)

    def instrumented(
        self,
        *,
        trace: bool = False,
        profile: bool = False,
        mem_profile: bool = False,
        sample_interval: Optional[float] = None,
        telquality: bool = False,
        whatif: bool = False,
    ) -> "RunSpec":
        """This spec with instrumentation flags ORed in (identity when no
        flag changes, so un-instrumented grids keep their spec objects).
        ``mem_profile`` implies ``profile``; an already-sampled spec keeps
        its own interval."""
        trace = trace or self.trace
        mem_profile = mem_profile or self.mem_profile
        profile = profile or self.profile or mem_profile
        sample_interval = (
            self.sample_interval if self.sample_interval is not None
            else sample_interval
        )
        telquality = telquality or self.telquality
        whatif = whatif or self.whatif
        if (
            trace == self.trace
            and profile == self.profile
            and mem_profile == self.mem_profile
            and sample_interval == self.sample_interval
            and telquality == self.telquality
            and whatif == self.whatif
        ):
            return self
        return replace(
            self, trace=trace, profile=profile, mem_profile=mem_profile,
            sample_interval=sample_interval, telquality=telquality,
            whatif=whatif,
        )


@dataclass(frozen=True)
class CalibrationSpec:
    """One Fig. 3 calibration point: a utilization level on the dumbbell."""

    KIND = "calibration"

    utilization: float = 0.0
    duration: float = 300.0
    rate_bps: float = 20e6
    link_delay: float = 0.010
    probing_interval: float = 0.1
    seed: int = 0
    # Engine profiling; in the hash (see RunSpec).  Calibration runs have no
    # task/probe lifecycles to trace, so there is no trace flag here.
    profile: bool = False
    mem_profile: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.KIND}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CalibrationSpec":
        return cls(**{k: v for k, v in data.items() if k != "kind"})

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        return content_hash(self.to_dict())

    def pairing_key(self) -> str:
        return self.content_hash()

    def expected_sim_duration(self) -> float:
        """Calibration runs simulate exactly ``duration`` seconds."""
        return self.duration

    def label(self) -> str:
        return f"calibration u={self.utilization:g} seed={self.seed}"

    def with_(self, **changes: Any) -> "CalibrationSpec":
        return replace(self, **changes)

    def instrumented(
        self,
        *,
        trace: bool = False,
        profile: bool = False,
        mem_profile: bool = False,
        sample_interval: Optional[float] = None,
        telquality: bool = False,
        whatif: bool = False,
    ) -> "CalibrationSpec":
        """Profiling only — calibration runs have nothing to span-trace,
        periodically sample, or probe (no scheduler, so no decisions to
        grade or replay).  ``mem_profile`` implies ``profile``."""
        del trace, sample_interval, telquality, whatif
        mem_profile = mem_profile or self.mem_profile
        profile = profile or self.profile or mem_profile
        if profile != self.profile or mem_profile != self.mem_profile:
            return replace(self, profile=profile, mem_profile=mem_profile)
        return self


SPEC_KINDS = {
    RunSpec.KIND: RunSpec,
    CalibrationSpec.KIND: CalibrationSpec,
}


def spec_from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild a spec from its ``to_dict`` form, dispatching on ``kind``."""
    kind = data.get("kind")
    cls = SPEC_KINDS.get(kind)
    if cls is None:
        raise ExperimentError(
            f"unknown spec kind {kind!r}; known: {sorted(SPEC_KINDS)}"
        )
    return cls.from_dict(data)
