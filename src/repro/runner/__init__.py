"""repro.runner — declarative run specs, pooled execution, result caching.

The evaluation is a grid of independent simulation runs; this package turns
"run the grid" into data:

* :mod:`repro.runner.spec` — :class:`RunSpec` / :class:`CalibrationSpec`,
  frozen, JSON-canonical, content-hashed;
* :mod:`repro.runner.cache` — ``.runcache/<hash>.json`` content-addressed
  result store;
* :mod:`repro.runner.runner` — :class:`Runner` (serial or supervised
  execution, deterministic either way) and :func:`expand_grid`;
* :mod:`repro.runner.supervisor` — process-per-run supervision: per-run
  wall-clock timeouts, crash/timeout retry with backoff, failure
  envelopes, deterministic chaos injection for the harness's own tests;
* :mod:`repro.runner.journal` — the ``--resume`` checkpoint journal
  (atomic JSONL appends of per-spec completion state);
* :mod:`repro.runner.bench` — the serial/parallel/cached benchmark behind
  ``repro bench-runner`` (imported lazily; not re-exported here so worker
  processes don't pay for the experiments import).

Every experiment driver in :mod:`repro.experiments` is a thin grid
definition over this package.
"""

from repro.runner.spec import (
    CalibrationSpec,
    RunSpec,
    SPEC_KINDS,
    canonical_json,
    content_hash,
    spec_from_dict,
)
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.journal import JournalState, RunJournal
from repro.runner.runner import (
    Runner,
    RunnerStats,
    RunResult,
    execute_spec,
    expand_grid,
)
from repro.runner.supervisor import (
    RunInterrupted,
    RunsFailedError,
    Supervisor,
    default_run_timeout,
)

__all__ = [
    "RunSpec",
    "CalibrationSpec",
    "SPEC_KINDS",
    "spec_from_dict",
    "canonical_json",
    "content_hash",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "Runner",
    "RunnerStats",
    "RunResult",
    "execute_spec",
    "expand_grid",
    "RunJournal",
    "JournalState",
    "Supervisor",
    "RunInterrupted",
    "RunsFailedError",
    "default_run_timeout",
]
