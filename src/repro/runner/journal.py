"""Checkpointed sweep journal: atomic JSONL appends, tolerant replay.

A :class:`RunJournal` records per-spec-hash completion state for one grid so
an interrupted sweep (SIGKILL, power loss, Ctrl-C) can restart with
``--resume`` and re-run only the missing or failed specs.  The file is
plain JSONL — one record per line, discriminated by ``"record"``:

* ``{"record": "scheduled", "spec_hash": h, "spec": {...}}`` — a unique
  spec entered the grid (written for every spec, cache hits included, so
  the journal alone reconstructs the full grid);
* ``{"record": "done", "spec_hash": h, "cached": bool}`` — the spec
  completed and its result is in the cache;
* ``{"record": "failed", "spec_hash": h, "failure": {...}}`` — the spec
  exhausted its retries; the failure envelope is preserved;
* ``{"record": "interrupted", "completed": n, "failed": m, "total": t}`` —
  the sweep stopped on SIGINT with work outstanding.

Appends are **atomic at the line level**: each record is a single
``os.write`` to an ``O_APPEND`` descriptor, which POSIX guarantees is not
interleaved with other appends and — for the crash case that matters here —
either lands entirely or, if the process dies first, leaves at most one
torn final line.  :meth:`RunJournal.load` therefore skips-and-warns on
malformed lines instead of raising: a torn tail means "that record didn't
happen", never "the journal is unusable".

Replay is last-record-wins per spec hash: a spec that failed, then
succeeded on a resumed pass, counts as done.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.runner.spec import canonical_json, spec_from_dict

__all__ = ["JournalState", "RunJournal"]

# spec_from_dict raises ExperimentError for unknown kinds and TypeError /
# KeyError / ValueError for field drift between code versions; all mean
# "can't rebuild this spec here", which load() treats as a skippable record.
_SPEC_LOAD_ERRORS = (ExperimentError, TypeError, KeyError, ValueError)


@dataclass
class JournalState:
    """Replayed view of a journal: the grid and each spec's latest status."""

    specs: Dict[str, Any] = field(default_factory=dict)  # hash -> spec object
    order: List[str] = field(default_factory=list)  # hashes, scheduling order
    status: Dict[str, str] = field(default_factory=dict)  # "pending"|"done"|"failed"
    cached: Dict[str, bool] = field(default_factory=dict)  # done-from-cache flag
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    interrupted: bool = False
    skipped_lines: int = 0

    @property
    def pending(self) -> List[str]:
        """Hashes still needing a run (never finished, or last seen failed),
        in scheduling order."""
        return [
            h for h in self.order if self.status.get(h, "pending") != "done"
        ]

    @property
    def done(self) -> List[str]:
        return [h for h in self.order if self.status.get(h) == "done"]

    def summary(self) -> str:
        done, failed = len(self.done), sum(
            1 for h in self.order if self.status.get(h) == "failed"
        )
        pending = len(self.order) - done - failed
        return (
            f"{len(self.order)} spec(s): {done} done, {failed} failed, "
            f"{pending} never ran"
        )


class RunJournal:
    """Append-only JSONL completion journal for one sweep."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- writing -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        line = (canonical_json(record) + "\n").encode("utf-8")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)  # single write: atomic under O_APPEND
        finally:
            os.close(fd)

    def scheduled(self, spec_hash: str, spec: Any) -> None:
        self._append({
            "record": "scheduled",
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
        })

    def done(self, spec_hash: str, *, cached: bool = False) -> None:
        self._append({"record": "done", "spec_hash": spec_hash, "cached": cached})

    def failed(self, spec_hash: str, failure: Dict[str, Any]) -> None:
        self._append({
            "record": "failed",
            "spec_hash": spec_hash,
            "failure": failure,
        })

    def interrupted(self, *, completed: int, failed: int, total: int) -> None:
        self._append({
            "record": "interrupted",
            "completed": completed,
            "failed": failed,
            "total": total,
        })

    # -- replay ------------------------------------------------------------

    def load(self, *, on_warning: Optional[Callable[[str], None]] = None) -> JournalState:
        """Replay the journal into a :class:`JournalState`.

        Malformed lines (torn final append, stray bytes) are skipped with a
        warning through ``on_warning`` — they mean the recorded operation
        never completed, which resume handles by re-running the spec."""
        if not self.exists():
            raise ExperimentError(f"journal not found: {self.path}")
        state = JournalState()
        warn = on_warning or (lambda _msg: None)
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    state.skipped_lines += 1
                    warn(
                        f"{self.path}:{lineno}: skipping malformed journal "
                        f"line (torn append?)"
                    )
                    continue
                if not isinstance(record, dict):
                    state.skipped_lines += 1
                    warn(f"{self.path}:{lineno}: skipping non-object journal line")
                    continue
                kind = record.get("record")
                if kind == "scheduled":
                    spec_hash = record.get("spec_hash")
                    spec_dict = record.get("spec")
                    if not isinstance(spec_hash, str) or not isinstance(spec_dict, dict):
                        state.skipped_lines += 1
                        warn(f"{self.path}:{lineno}: skipping bad scheduled record")
                        continue
                    try:
                        spec = spec_from_dict(spec_dict)
                    except _SPEC_LOAD_ERRORS as exc:
                        state.skipped_lines += 1
                        warn(
                            f"{self.path}:{lineno}: skipping scheduled record "
                            f"with unloadable spec ({exc})"
                        )
                        continue
                    if spec_hash not in state.specs:
                        state.order.append(spec_hash)
                    state.specs[spec_hash] = spec
                    state.status.setdefault(spec_hash, "pending")
                elif kind == "done":
                    spec_hash = record.get("spec_hash")
                    if isinstance(spec_hash, str):
                        state.status[spec_hash] = "done"
                        state.cached[spec_hash] = bool(record.get("cached", False))
                        state.failures.pop(spec_hash, None)
                elif kind == "failed":
                    spec_hash = record.get("spec_hash")
                    if isinstance(spec_hash, str):
                        state.status[spec_hash] = "failed"
                        failure = record.get("failure")
                        state.failures[spec_hash] = (
                            failure if isinstance(failure, dict) else {}
                        )
                elif kind == "interrupted":
                    state.interrupted = True
                else:
                    state.skipped_lines += 1
                    warn(
                        f"{self.path}:{lineno}: skipping unknown journal "
                        f"record {kind!r}"
                    )
        return state
