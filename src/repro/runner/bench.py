"""Runner benchmark: serial vs parallel vs cached on the Fig. 5 grid.

``repro bench-runner`` runs the same policy-comparison grid three ways —
serially, on a process pool, and against a warm cache — and reports the
wall-clock for each plus the byte-identity verdict (every cell's payload
must be identical across all three executions).  CI runs this on a small
grid as the bench-smoke job; the committed ``BENCH_runner.json`` records a
full-size data point.

Parallel speedup is bounded by the host's core count — on a host with
fewer CPUs than ``--jobs`` the parallel pass measures process-spawn
overhead, not parallelism, so the report annotates ``parallel_valid:
false`` and downstream consumers (``bench-compare``, ``perf-report``)
exclude the number instead of flagging noise.  The cached pass skips
simulation entirely and its speedup is large everywhere.

Every ``bench-runner`` invocation also appends one provenance-stamped
record to the **bench-history ledger** (``BENCH_history.jsonl`` by
default): the timing metrics plus the phase-level engine profile, so
``repro perf-report`` can render trends across commits and
``bench-compare --history`` can gate against a rolling baseline instead
of one hand-picked file.
"""

from __future__ import annotations

import datetime
import json
import os
import sys
import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.runner.cache import ResultCache
from repro.runner.runner import Runner, RunResult, expand_grid
from repro.runner.spec import RunSpec

__all__ = [
    "bench_grid_specs",
    "run_bench",
    "compare_bench",
    "render_bench_compare",
    "parallel_valid",
    "history_record",
    "append_history",
    "read_history",
    "rolling_baseline",
    "DEFAULT_MAX_REGRESSION",
    "PROFILE_GATE_MAX_REGRESSION",
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_HISTORY_WINDOW",
]

# A candidate timing may be up to (1 + this) x the baseline before the
# comparison flags a regression.  Generous by default: bench numbers come
# from heterogeneous hosts (laptops, CI runners) and only order-of-magnitude
# slowdowns are actionable without a pinned machine.
DEFAULT_MAX_REGRESSION = 0.5

# The wall-clock metrics a bench report carries, in report order.
_TIMING_METRICS = ("serial_s", "parallel_s", "cached_s")

# Hot-path handlers gated by profile wall-time when both reports carry an
# engine profile.  These two dominate the per-packet path; the fast-path
# refactor bought its speedup here, and the tighter default threshold
# (20% vs the generous timing default) keeps it from quietly eroding.
# Override per handler with ``--threshold "profile:Switch.on_ingress=0.5"``.
_PROFILE_GATE_HANDLERS = ("Switch.on_ingress", "Port._tx_complete")
PROFILE_GATE_MAX_REGRESSION = 0.2

# Default bench-history ledger path (relative to the repo root / cwd) and
# the number of most-recent records the rolling baseline is computed over.
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"
DEFAULT_HISTORY_WINDOW = 5


def bench_grid_specs(scale: str = "smoke", seed: int = 0) -> List[RunSpec]:
    """The Fig. 5 grid (serverless workload, delay ranking): every size
    class x every policy at the requested scale."""
    from repro.experiments.comparison import (
        ALL_CLASSES,
        DEFAULT_POLICIES,
        FIG5_CONFIG,
    )
    from repro.experiments.harness import FULL_SCALE, QUICK_SCALE, SMOKE_SCALE

    scales = {"smoke": SMOKE_SCALE, "quick": QUICK_SCALE, "full": FULL_SCALE}
    base = RunSpec.from_config(
        replace(FIG5_CONFIG, scale=scales[scale], seed=seed)
    )
    return expand_grid(
        base,
        {
            "size_class": [c.label for c in ALL_CLASSES],
            "policy": list(DEFAULT_POLICIES),
        },
    )


def _diverging_cells(
    reference: List[RunResult], candidate: List[RunResult]
) -> List[str]:
    out = []
    for ref, cand in zip(reference, candidate):
        if ref.payload_json() != cand.payload_json():
            out.append(ref.spec.label())
    return out


def run_bench(
    *,
    scale: str = "smoke",
    jobs: int = 2,
    seed: int = 0,
    cache_root: str,
    progress: Optional[Callable[[str], None]] = None,
    profile: bool = True,
    mem_profile: bool = False,
    run_timeout: Optional[float] = None,
    retries: int = 0,
) -> Dict[str, Any]:
    """Time the grid serial / parallel / cached; return the report dict.

    ``cache_root`` is used for the cached pass only (pre-populated from the
    serial results, then timed).  The report's ``byte_identical`` is the
    headline correctness claim: parallel and cached payloads must match the
    serial ones byte for byte.  With ``profile`` on (the default), every
    pass runs under the engine profiler — the profile lives in result
    provenance, so byte-identity still holds — and the serial pass's merged
    summary lands in the report's ``profile`` key.  ``mem_profile`` adds
    gc/tracemalloc attribution to that summary (implies ``profile``).

    ``parallel_valid`` records whether the parallel timing means anything:
    on a host with fewer CPUs than ``jobs`` the pool just multiplexes one
    core and the number measures spawn overhead, so it is annotated false
    and excluded from comparisons rather than flagged as a regression.

    ``run_timeout``/``retries`` plumb the resilience knobs into each pass
    (see :class:`Runner`).  A positive ``run_timeout`` moves the serial
    pass under supervision (one child process per run), which adds spawn
    overhead to ``serial_s`` — leave it unset for honest timing."""
    profile = profile or mem_profile
    specs = bench_grid_specs(scale, seed)
    say = progress if progress is not None else (lambda _line: None)
    cpus = os.cpu_count() or 1

    say(f"serial: {len(specs)} runs ...")
    serial_runner = Runner(
        jobs=1, profile=profile, mem_profile=mem_profile,
        run_timeout=run_timeout, retries=retries,
    )
    t0 = time.perf_counter()
    serial = serial_runner.run(specs)
    serial_s = time.perf_counter() - t0

    say(f"parallel: {len(specs)} runs on {jobs} workers ...")
    parallel_runner = Runner(
        jobs=jobs, profile=profile, run_timeout=run_timeout, retries=retries,
    )
    t0 = time.perf_counter()
    parallel = parallel_runner.run(specs)
    parallel_s = time.perf_counter() - t0

    say("cached: warm-cache re-run ...")
    cache = ResultCache(cache_root)
    for result in serial:
        cache.put(result.spec_hash, result.to_json().encode("utf-8"))
    cached_runner = Runner(
        jobs=1, cache=cache, profile=profile,
        run_timeout=run_timeout, retries=retries,
    )
    t0 = time.perf_counter()
    cached = cached_runner.run(specs)
    cached_s = time.perf_counter() - t0

    diverging = sorted(
        set(_diverging_cells(serial, parallel))
        | set(_diverging_cells(serial, cached))
    )
    return {
        "grid": {
            "figure": "fig5",
            "scale": scale,
            "seed": seed,
            "runs": len(specs),
        },
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_jobs": jobs,
        "parallel_valid": jobs <= cpus,
        "parallel_speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "cached_s": round(cached_s, 3),
        "cached_speedup": round(serial_s / cached_s, 3) if cached_s else None,
        "cache_hits": cached_runner.stats.cache_hits,
        "byte_identical": not diverging,
        "diverging_cells": diverging,
        "profile": serial_runner.profile_summary() if profile else None,
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
            "platform": sys.platform,
        },
    }


def parallel_valid(report: Dict[str, Any]) -> bool:
    """Whether a report's parallel timing reflects real parallelism.

    Reports written before the ``parallel_valid`` key existed are inferred
    from ``parallel_jobs`` vs the recorded host CPU count."""
    value = report.get("parallel_valid")
    if isinstance(value, bool):
        return value
    jobs = report.get("parallel_jobs")
    cpus = dict(report.get("host") or {}).get("cpus")
    if isinstance(jobs, int) and isinstance(cpus, int):
        return jobs <= cpus
    return True


# ---------------------------------------------------------------------------
# Bench-history ledger
# ---------------------------------------------------------------------------


# Fallback ceiling for the git-commit lookup when no --run-timeout is
# plumbed through: generous, but still bounded.
DEFAULT_GIT_TIMEOUT_S = 10.0


def history_record(
    report: Dict[str, Any], *, git_timeout: Optional[float] = None
) -> Dict[str, Any]:
    """Shape one ``run_bench`` report into a provenance-stamped ledger line.

    Keeps the timing metrics and the phase profile; stamps UTC wall time
    and, when available, the current git commit so ``perf-report`` can
    label trend points.  The record is self-contained — reading the ledger
    never requires the original ``BENCH_*.json`` files.  ``git_timeout``
    bounds the commit lookup; ``bench-runner`` plumbs ``--run-timeout``
    through here so one knob governs every subprocess the bench spawns."""
    stamp = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "git_commit": _git_commit(timeout=git_timeout),
    }
    record = dict(report)
    record["provenance"] = stamp
    return record


def _git_commit(timeout: Optional[float] = None) -> Optional[str]:
    """Current short commit hash, or None outside a git checkout."""
    import subprocess

    if timeout is None or timeout <= 0:
        timeout = DEFAULT_GIT_TIMEOUT_S
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def append_history(
    report: Dict[str, Any], path: str, *, git_timeout: Optional[float] = None
) -> Dict[str, Any]:
    """Append one report to the ledger at ``path``; returns the record.

    The append is a single ``os.write`` to an ``O_APPEND`` descriptor, so a
    ``bench-runner`` killed mid-append cannot interleave with a concurrent
    writer and at worst leaves one torn final line — which
    :func:`read_history` skips with a warning instead of failing
    ``perf-report``/``bench-compare --history``."""
    record = history_record(report, git_timeout=git_timeout)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)
    return record


def read_history(
    path: str, *, on_warning: Optional[Callable[[str], None]] = None
) -> List[Dict[str, Any]]:
    """Load ledger records oldest-first, skipping malformed lines.

    A torn line (writer killed mid-append under a pre-atomic writer, disk
    full, stray edit) costs that record only: it is skipped with a warning
    through ``on_warning`` (default: stderr) rather than making the whole
    ledger unreadable."""
    if on_warning is None:
        on_warning = lambda msg: print(f"warning: {msg}", file=sys.stderr)  # noqa: E731
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                on_warning(
                    f"{path}:{lineno}: skipping malformed history record: {exc}"
                )
                continue
            if not isinstance(record, dict):
                on_warning(
                    f"{path}:{lineno}: skipping history record: not an object"
                )
                continue
            records.append(record)
    return records


def rolling_baseline(
    records: List[Dict[str, Any]], window: int = DEFAULT_HISTORY_WINDOW
) -> Dict[str, Any]:
    """Synthesize a baseline report from the last ``window`` ledger records.

    Each timing metric becomes the median over the records that carry it —
    parallel metrics only from records whose parallel timing is valid — so
    one noisy run cannot move the gate the way a single-file baseline can.
    The grid and host of the newest record are carried over for the grid
    compatibility check."""
    if not records:
        raise ExperimentError("bench history is empty; run bench-runner first")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    tail = records[-window:]
    newest = tail[-1]
    baseline: Dict[str, Any] = {
        "grid": dict(newest.get("grid", {})),
        "host": dict(newest.get("host") or {}),
        "byte_identical": True,
        "diverging_cells": [],
        "parallel_jobs": newest.get("parallel_jobs"),
        "parallel_valid": any(parallel_valid(r) for r in tail),
        "baseline_of": len(tail),
    }
    for metric in _TIMING_METRICS:
        pool = tail
        if metric == "parallel_s":
            pool = [r for r in tail if parallel_valid(r)]
        values = sorted(
            r[metric]
            for r in pool
            if isinstance(r.get(metric), (int, float))
        )
        if not values:
            baseline[metric] = None
            continue
        mid = len(values) // 2
        if len(values) % 2:
            baseline[metric] = values[mid]
        else:
            baseline[metric] = round((values[mid - 1] + values[mid]) / 2.0, 3)
    # Median per gated hot-path handler over the records that profiled it,
    # so the profile gate works against a rolling baseline too.
    by_type: Dict[str, Any] = {}
    for handler in _PROFILE_GATE_HANDLERS:
        walls = sorted(
            wall
            for r in tail
            for wall in [
                dict(
                    dict((r.get("profile") or {}).get("by_type") or {}).get(handler)
                    or {}
                ).get("wall_s")
            ]
            if isinstance(wall, (int, float))
        )
        if walls:
            mid = len(walls) // 2
            median = (
                walls[mid]
                if len(walls) % 2
                else round((walls[mid - 1] + walls[mid]) / 2.0, 6)
            )
            by_type[handler] = {"wall_s": median}
    if by_type:
        baseline["profile"] = {"by_type": by_type}
    return baseline


def compare_bench(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    thresholds: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Diff two ``run_bench`` reports; the regression gate behind
    ``repro bench-compare``.

    Checks, in order: the candidate's ``byte_identical`` claim must hold
    (a correctness failure regardless of timing); the grids must describe
    the same workload (figure/scale/runs — seed may differ); and each
    timing metric's ratio ``candidate / baseline`` must stay at or below
    ``1 + threshold``, where ``thresholds`` overrides ``max_regression``
    per metric (e.g. ``{"cached_s": 2.0}``).  Metrics missing from either
    report are skipped and reported as such, and ``parallel_s`` is skipped
    (never failed) when either side's parallel timing is invalid — a
    1-CPU runner timing a 4-worker pool measures spawn overhead, not a
    regression.  Returns a JSON-ready report; ``ok`` is the overall
    verdict."""
    if max_regression < 0:
        raise ValueError(f"max_regression must be >= 0, got {max_regression}")
    thresholds = dict(thresholds or {})
    failures: List[str] = []

    if not candidate.get("byte_identical", False):
        failures.append(
            "candidate is not byte-identical across executors: "
            + ", ".join(candidate.get("diverging_cells", []) or ["(no detail)"])
        )
    base_grid = dict(baseline.get("grid", {}))
    cand_grid = dict(candidate.get("grid", {}))
    for field in ("figure", "scale", "runs"):
        if base_grid.get(field) != cand_grid.get(field):
            failures.append(
                f"grid mismatch on {field!r}: baseline "
                f"{base_grid.get(field)!r} vs candidate {cand_grid.get(field)!r}"
            )

    rows: List[Dict[str, Any]] = []
    for metric in _TIMING_METRICS:
        threshold = float(thresholds.get(metric, max_regression))
        base_v = baseline.get(metric)
        cand_v = candidate.get(metric)
        row: Dict[str, Any] = {
            "metric": metric,
            "baseline": base_v,
            "candidate": cand_v,
            "threshold": threshold,
        }
        if metric == "parallel_s" and not (
            parallel_valid(baseline) and parallel_valid(candidate)
        ):
            row["status"] = "skipped"
            row["ratio"] = None
            row["note"] = "parallel timing invalid (jobs > host cpus)"
        elif not isinstance(base_v, (int, float)) or not isinstance(
            cand_v, (int, float)
        ) or base_v <= 0:
            row["status"] = "skipped"
            row["ratio"] = None
        else:
            ratio = cand_v / base_v
            row["ratio"] = round(ratio, 3)
            if ratio > 1.0 + threshold:
                row["status"] = "regression"
                failures.append(
                    f"{metric}: {cand_v:.3f}s vs baseline {base_v:.3f}s "
                    f"({ratio:.2f}x > {1.0 + threshold:.2f}x allowed)"
                )
            else:
                row["status"] = "ok"
        rows.append(row)

    # Profile-handler gate: when both reports carry an engine profile, the
    # hot-path handlers' wall time is held to a tighter bar than the coarse
    # timing metrics.  Skipped (never failed) when either profile is absent
    # so profile-less reports keep comparing as before.
    base_types = dict((baseline.get("profile") or {}).get("by_type") or {})
    cand_types = dict((candidate.get("profile") or {}).get("by_type") or {})
    for handler in _PROFILE_GATE_HANDLERS:
        metric = f"profile:{handler}"
        threshold = float(thresholds.get(metric, PROFILE_GATE_MAX_REGRESSION))
        base_v = dict(base_types.get(handler) or {}).get("wall_s")
        cand_v = dict(cand_types.get(handler) or {}).get("wall_s")
        row = {
            "metric": metric,
            "baseline": round(base_v, 3) if isinstance(base_v, (int, float)) else None,
            "candidate": round(cand_v, 3) if isinstance(cand_v, (int, float)) else None,
            "threshold": threshold,
        }
        if (
            not isinstance(base_v, (int, float))
            or not isinstance(cand_v, (int, float))
            or base_v <= 0
        ):
            row["status"] = "skipped"
            row["ratio"] = None
        else:
            ratio = cand_v / base_v
            row["ratio"] = round(ratio, 3)
            if ratio > 1.0 + threshold:
                row["status"] = "regression"
                failures.append(
                    f"{metric}: {cand_v:.3f}s vs baseline {base_v:.3f}s "
                    f"({ratio:.2f}x > {1.0 + threshold:.2f}x allowed)"
                )
            else:
                row["status"] = "ok"
        rows.append(row)

    return {
        "ok": not failures,
        "max_regression": max_regression,
        "rows": rows,
        "failures": failures,
        "baseline_grid": base_grid,
        "candidate_grid": cand_grid,
    }


def render_bench_compare(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a ``compare_bench`` report."""
    lines = ["bench-compare"]
    lines.append(
        f"  grid: {report['candidate_grid'].get('figure')}"
        f"/{report['candidate_grid'].get('scale')} "
        f"({report['candidate_grid'].get('runs')} runs)"
    )
    for row in report["rows"]:
        base = row["baseline"]
        cand = row["candidate"]
        ratio = row["ratio"]
        lines.append(
            f"  {row['metric']:<12} "
            f"base={base if base is not None else '-':>8} "
            f"cand={cand if cand is not None else '-':>8} "
            f"ratio={ratio if ratio is not None else '-':>6} "
            f"(allowed {1.0 + row['threshold']:.2f}x) [{row['status']}]"
            + (f" -- {row['note']}" if row.get("note") else "")
        )
    if report["failures"]:
        lines.append("  FAILURES:")
        for failure in report["failures"]:
            lines.append(f"    - {failure}")
    lines.append(f"  verdict: {'OK' if report['ok'] else 'REGRESSION'}")
    return "\n".join(lines)
