"""Deterministic fault execution on the simulation engine.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan` to one
simulation: :meth:`arm` schedules every primitive event on the engine (and
registers the injector as ``sim.faults``, mirroring the ``sim.obs``
convention), and each firing mutates the targeted link, switch, or edge
server.  Every injection/recovery is mirrored into the observability layer
(``fault_injected`` / ``fault_recovered`` events plus counters) when a hub is
attached.

Determinism: event *schedules* are pure data, and the only randomness —
per-packet loss draws — comes from the injector's dedicated
:mod:`repro.simnet.random` stream, so identical (plan, seed) pairs replay
identically, event log and all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import FaultError
from repro.faults.plan import (
    LINK_DEGRADE,
    LINK_DOWN,
    LINK_RESTORE,
    LINK_UP,
    PACKET_LOSS,
    PROBE_LOSS,
    REGISTER_WIPE,
    SERVER_CRASH,
    SERVER_PAUSE,
    SERVER_RECOVER,
    FaultEvent,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.edge.server import EdgeServer
    from repro.simnet.engine import Simulator
    from repro.simnet.link import Link
    from repro.simnet.switch import Switch
    from repro.simnet.topology import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a fault plan against one network/simulation pair."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        plan: FaultPlan,
        *,
        servers: Optional[Dict[str, "EdgeServer"]] = None,
        rng: Optional["np.random.Generator"] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.plan = plan
        # host name -> EdgeServer, for server_* targets.
        self.servers: Dict[str, "EdgeServer"] = dict(servers or {})
        self.rng = rng
        self.fired: List[Tuple[float, FaultEvent]] = []
        self.faults_injected = 0
        self.faults_recovered = 0
        self._armed = False
        if plan.needs_rng() and rng is None:
            raise FaultError(
                f"plan {plan.name!r} contains probabilistic loss events; "
                "pass rng=streams.get('faults') so replays are deterministic"
            )

    def register_server(self, name: str, server: "EdgeServer") -> None:
        self.servers[name] = server

    # -- scheduling --------------------------------------------------------

    def arm(self) -> int:
        """Schedule every primitive plan event; returns the count scheduled.
        Events dated before the current sim time are clamped to *now* (they
        still fire, in plan order)."""
        if self._armed:
            raise FaultError("fault injector already armed")
        self._armed = True
        self.sim.faults = self
        events = self.plan.expanded()
        for ev in events:
            self.sim.schedule_at(max(ev.time, self.sim.now), self._fire, ev)
        return len(events)

    # -- execution ---------------------------------------------------------

    def _fire(self, ev: FaultEvent) -> None:
        handler = self._HANDLERS.get(ev.kind)
        if handler is None:  # pragma: no cover - plan validation prevents this
            raise FaultError(f"no handler for fault kind {ev.kind!r}")
        handler(self, ev)
        self.fired.append((self.sim.now, ev))

    def _mirror(self, ev: FaultEvent, target: str, **detail) -> None:
        if ev.is_recovery:
            self.faults_recovered += 1
        else:
            self.faults_injected += 1
        obs = self.sim.obs
        if obs:
            if ev.is_recovery:
                obs.fault_recovered(fault=ev.kind, target=target, **detail)
            else:
                obs.fault_injected(fault=ev.kind, target=target, **detail)

    # -- target resolution -------------------------------------------------

    def _links_for(self, ev: FaultEvent) -> List["Link"]:
        if ev.target == "*":
            return list(self.network.links.values())
        link = self.network.links.get(ev.target)
        if link is None:
            raise FaultError(
                f"fault {ev.kind!r}: no link named {ev.target!r} "
                f"(known: {sorted(self.network.links)})"
            )
        return [link]

    def _switches_for(self, ev: FaultEvent) -> List["Switch"]:
        if ev.target == "*":
            return list(self.network.switches.values())
        if ev.target not in self.network.switches:
            raise FaultError(f"fault {ev.kind!r}: no switch named {ev.target!r}")
        return [self.network.switches[ev.target]]

    def _servers_for(self, ev: FaultEvent) -> List[Tuple[str, "EdgeServer"]]:
        if ev.target == "*":
            return sorted(self.servers.items())
        server = self.servers.get(ev.target)
        if server is None:
            raise FaultError(
                f"fault {ev.kind!r}: no edge server registered on {ev.target!r} "
                f"(known: {sorted(self.servers)})"
            )
        return [(ev.target, server)]

    # -- handlers ----------------------------------------------------------

    def _on_link_down(self, ev: FaultEvent) -> None:
        for link in self._links_for(ev):
            link.set_up(False)
            self._mirror(ev, link.name)

    def _on_link_up(self, ev: FaultEvent) -> None:
        for link in self._links_for(ev):
            link.set_up(True)
            self._mirror(ev, link.name)

    def _on_link_degrade(self, ev: FaultEvent) -> None:
        for link in self._links_for(ev):
            link.set_degradation(rate_factor=ev.rate_factor, extra_delay=ev.extra_delay)
            self._mirror(
                ev, link.name, rate_factor=ev.rate_factor, extra_delay=ev.extra_delay
            )

    def _on_link_restore(self, ev: FaultEvent) -> None:
        for link in self._links_for(ev):
            link.set_degradation(rate_factor=1.0, extra_delay=0.0)
            link.set_loss(rate=0.0, probe_rate=0.0)
            self._mirror(ev, link.name)

    def _on_packet_loss(self, ev: FaultEvent) -> None:
        for link in self._links_for(ev):
            link.set_loss(rate=ev.rate, rng=self.rng)
            self._mirror(ev, link.name, rate=ev.rate)

    def _on_probe_loss(self, ev: FaultEvent) -> None:
        for link in self._links_for(ev):
            link.set_loss(probe_rate=ev.rate, rng=self.rng)
            self._mirror(ev, link.name, rate=ev.rate)

    def _on_register_wipe(self, ev: FaultEvent) -> None:
        for switch in self._switches_for(ev):
            if switch.program is None:
                continue
            for reg in switch.program.registers.values():
                reg.reset()
            self._mirror(ev, switch.name)

    def _on_server_crash(self, ev: FaultEvent) -> None:
        for name, server in self._servers_for(ev):
            dropped = server.crash()
            self._mirror(ev, name, tasks_dropped=dropped)

    def _on_server_pause(self, ev: FaultEvent) -> None:
        for name, server in self._servers_for(ev):
            server.pause()
            self._mirror(ev, name)

    def _on_server_recover(self, ev: FaultEvent) -> None:
        for name, server in self._servers_for(ev):
            server.recover()
            self._mirror(ev, name)

    _HANDLERS = {
        LINK_DOWN: _on_link_down,
        LINK_UP: _on_link_up,
        LINK_DEGRADE: _on_link_degrade,
        LINK_RESTORE: _on_link_restore,
        PACKET_LOSS: _on_packet_loss,
        PROBE_LOSS: _on_probe_loss,
        REGISTER_WIPE: _on_register_wipe,
        SERVER_CRASH: _on_server_crash,
        SERVER_PAUSE: _on_server_pause,
        SERVER_RECOVER: _on_server_recover,
    }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector plan={self.plan.name!r} events={len(self.plan)} "
            f"fired={len(self.fired)}>"
        )
