"""Built-in fault scenarios for the Fig. 4 topology.

Each scenario is a ready-made :class:`~repro.faults.plan.FaultPlan` sized for
the experiment harness timeline (first job at t = 1 s): faults strike while
tasks are in flight, so the comparison experiments actually exercise the
degradation machinery.  Link and node names follow the Fig. 4 builder
(``node1`` .. ``node8``, cores ``s01`` .. ``s04``, leaves ``s05`` .. ``s12``,
links ``"<a><-><b>"``).

``builtin_plan(name)`` is the lookup used by the CLI (``--faults link-flap``)
and the fault-scenario harness.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import FaultError
from repro.faults.plan import (
    LINK_DEGRADE,
    LINK_FLAP,
    LINK_RESTORE,
    PROBE_LOSS,
    REGISTER_WIPE,
    SERVER_CRASH,
    SERVER_RECOVER,
    FaultEvent,
    FaultPlan,
)

__all__ = ["BUILTIN_SCENARIOS", "builtin_plan", "scenario_names"]


def _link_flap() -> FaultPlan:
    """The core ring link s01<->s02 flaps four times (0.5 s down / 0.5 s up)
    starting at t = 2 s: cross-pod traffic sees repeated carrier loss and the
    transports must ride it out."""
    return FaultPlan(
        name="link-flap",
        description="core link s01<->s02 flaps 4x (1 s period) from t=2s",
        events=(
            FaultEvent(time=2.0, kind=LINK_FLAP, target="s01<->s02",
                       period=1.0, count=4),
        ),
    )


def _probe_blackout() -> FaultPlan:
    """Every probe on every link is dropped between t = 2 s and t = 8 s —
    data traffic is untouched but the scheduler goes completely blind, so
    telemetry ages past the TTL and the degraded ranking paths take over."""
    return FaultPlan(
        name="probe-blackout",
        description="100% probe loss on every link from t=2s to t=8s",
        events=(
            FaultEvent(time=2.0, kind=PROBE_LOSS, target="*", rate=1.0),
            FaultEvent(time=8.0, kind=LINK_RESTORE, target="*"),
        ),
    )


def _server_crash() -> FaultPlan:
    """node7's edge server crashes at t = 2.5 s, dropping its in-flight tasks,
    and recovers at t = 40 s.  Devices must time out and fail over to the
    next-ranked server for ~every task scheduled onto node7."""
    return FaultPlan(
        name="server-crash",
        description="edge server on node7 crashes at t=2.5s, recovers at t=40s",
        events=(
            FaultEvent(time=2.5, kind=SERVER_CRASH, target="node7"),
            FaultEvent(time=40.0, kind=SERVER_RECOVER, target="node7"),
        ),
    )


def _register_wipe() -> FaultPlan:
    """All INT registers on every switch are wiped at t = 2 s and t = 4 s —
    the 'switch reboot' case: the collector sees zeroed readings, never
    garbage, and telemetry refills within one probing interval."""
    return FaultPlan(
        name="register-wipe",
        description="INT registers on every switch wiped at t=2s and t=4s",
        events=(
            FaultEvent(time=2.0, kind=REGISTER_WIPE, target="*"),
            FaultEvent(time=4.0, kind=REGISTER_WIPE, target="*"),
        ),
    )


def _link_degrade() -> FaultPlan:
    """The s02<->s03 core link loses 3/4 of its capacity and gains 20 ms of
    latency between t = 2 s and t = 10 s: a brownout rather than an outage."""
    return FaultPlan(
        name="link-degrade",
        description="s02<->s03 at 25% rate +20ms latency from t=2s to t=10s",
        events=(
            FaultEvent(time=2.0, kind=LINK_DEGRADE, target="s02<->s03",
                       rate_factor=0.25, extra_delay=0.020),
            FaultEvent(time=10.0, kind=LINK_RESTORE, target="s02<->s03"),
        ),
    )


BUILTIN_SCENARIOS: Dict[str, Callable[[], FaultPlan]] = {
    "link-flap": _link_flap,
    "probe-blackout": _probe_blackout,
    "server-crash": _server_crash,
    "register-wipe": _register_wipe,
    "link-degrade": _link_degrade,
}


def scenario_names() -> List[str]:
    return sorted(BUILTIN_SCENARIOS)


def builtin_plan(name: str) -> FaultPlan:
    """Instantiate a built-in scenario by name."""
    try:
        factory = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise FaultError(
            f"unknown fault scenario {name!r}; built-ins: {scenario_names()}"
        ) from None
    return factory()
