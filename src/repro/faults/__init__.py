"""repro.faults — deterministic fault injection.

Declarative :class:`FaultPlan` timelines (link outages and flaps, rate and
latency degradation, probabilistic packet/probe loss, switch register wipes,
edge-server crash/pause/recover) executed against a running simulation by a
:class:`FaultInjector`.  Built-in scenarios for the Fig. 4 topology live in
:mod:`repro.faults.scenarios`; graceful-degradation behaviour under these
faults lives with the consumers (telemetry store staleness/quarantine,
device retry/failover, server crash semantics).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    LINK_DEGRADE,
    LINK_DOWN,
    LINK_FLAP,
    LINK_RESTORE,
    LINK_UP,
    PACKET_LOSS,
    PROBE_LOSS,
    REGISTER_WIPE,
    SERVER_CRASH,
    SERVER_PAUSE,
    SERVER_RECOVER,
    FaultEvent,
    FaultPlan,
)
from repro.faults.scenarios import BUILTIN_SCENARIOS, builtin_plan, scenario_names

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "BUILTIN_SCENARIOS",
    "builtin_plan",
    "scenario_names",
    "FAULT_KINDS",
    "LINK_DOWN",
    "LINK_UP",
    "LINK_FLAP",
    "LINK_DEGRADE",
    "LINK_RESTORE",
    "PACKET_LOSS",
    "PROBE_LOSS",
    "REGISTER_WIPE",
    "SERVER_CRASH",
    "SERVER_PAUSE",
    "SERVER_RECOVER",
]
