"""Fault plans: declarative, sim-time-scheduled failure timelines.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records, each
naming a kind (link down/up, degradation, probabilistic loss, switch register
wipe, edge-server crash/pause/recover), a sim time, and a target — a link
name (``"s01<->s02"``), a switch or node name, or ``"*"`` for every matching
element.  Plans are plain data: they can be round-tripped through JSON
(``--faults plan.json`` on the CLI) and are executed by
:class:`~repro.faults.injector.FaultInjector`.

The ``link_flap`` kind is declarative sugar: :meth:`FaultPlan.expanded`
unrolls one flap event into ``count`` down/up cycles of ``period`` seconds
(half down, half up), so injector and determinism logic only ever see the
primitive kinds.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List

from repro.errors import FaultError

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "LINK_DOWN",
    "LINK_UP",
    "LINK_FLAP",
    "LINK_DEGRADE",
    "LINK_RESTORE",
    "PACKET_LOSS",
    "PROBE_LOSS",
    "REGISTER_WIPE",
    "SERVER_CRASH",
    "SERVER_PAUSE",
    "SERVER_RECOVER",
    "FAULT_KINDS",
]

LINK_DOWN = "link_down"          # carrier lost: every frame on the wire is dropped
LINK_UP = "link_up"              # carrier restored
LINK_FLAP = "link_flap"          # sugar: count x (down period/2, up period/2)
LINK_DEGRADE = "link_degrade"    # rate_factor x capacity, +extra_delay propagation
LINK_RESTORE = "link_restore"    # clear degradation and loss rates (not up/down)
PACKET_LOSS = "packet_loss"      # drop each frame with probability `rate`
PROBE_LOSS = "probe_loss"        # drop each *probe* frame with probability `rate`
REGISTER_WIPE = "register_wipe"  # reset a switch's INT registers ("reboot")
SERVER_CRASH = "server_crash"    # edge server dies; in-flight tasks are lost
SERVER_PAUSE = "server_pause"    # edge server stops starting tasks (queues them)
SERVER_RECOVER = "server_recover"  # crashed/paused server resumes service

_LINK_KINDS = frozenset({LINK_DOWN, LINK_UP, LINK_FLAP, LINK_DEGRADE, LINK_RESTORE,
                         PACKET_LOSS, PROBE_LOSS})
_SWITCH_KINDS = frozenset({REGISTER_WIPE})
_SERVER_KINDS = frozenset({SERVER_CRASH, SERVER_PAUSE, SERVER_RECOVER})
FAULT_KINDS = _LINK_KINDS | _SWITCH_KINDS | _SERVER_KINDS

# Aliases accepted for the target key when parsing event dicts, so plan files
# can say {"kind": "link_down", "link": "s01<->s02"} instead of "target".
_TARGET_ALIASES = ("target", "link", "switch", "node", "server")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault or recovery action."""

    time: float
    kind: str
    target: str = "*"
    rate: float = 0.0          # packet_loss / probe_loss drop probability
    rate_factor: float = 1.0   # link_degrade capacity multiplier, in (0, 1]
    extra_delay: float = 0.0   # link_degrade added propagation delay (s)
    period: float = 1.0        # link_flap cycle length (s)
    count: int = 1             # link_flap cycle count

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if self.time < 0:
            raise FaultError(f"fault time must be >= 0, got {self.time}")
        if not self.target:
            raise FaultError("fault target must be a name or '*'")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"loss rate must be in [0, 1], got {self.rate}")
        if not 0.0 < self.rate_factor <= 1.0:
            raise FaultError(
                f"rate_factor must be in (0, 1], got {self.rate_factor}"
            )
        if self.extra_delay < 0:
            raise FaultError(f"extra_delay must be >= 0, got {self.extra_delay}")
        if self.kind == LINK_FLAP:
            if self.period <= 0:
                raise FaultError(f"flap period must be positive, got {self.period}")
            if self.count < 1:
                raise FaultError(f"flap count must be >= 1, got {self.count}")

    @property
    def is_recovery(self) -> bool:
        """True for events that restore service rather than break it."""
        return self.kind in (LINK_UP, LINK_RESTORE, SERVER_RECOVER)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        fields_in = dict(data)
        target = "*"
        for alias in _TARGET_ALIASES:
            if alias in fields_in:
                target = fields_in.pop(alias)
        known = {"time", "kind", "rate", "rate_factor", "extra_delay", "period", "count"}
        unknown = set(fields_in) - known
        if unknown:
            raise FaultError(f"unknown fault event keys: {sorted(unknown)}")
        if "time" not in fields_in or "kind" not in fields_in:
            raise FaultError("fault events need at least 'time' and 'kind'")
        return cls(target=str(target), **fields_in)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered timeline of fault events."""

    events: tuple
    name: str = "custom"
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise FaultError(f"plan events must be FaultEvent, got {type(ev).__name__}")

    def __len__(self) -> int:
        return len(self.events)

    def expanded(self) -> List[FaultEvent]:
        """Primitive events in time order: flap sugar unrolled into down/up
        cycles, ties kept in plan order (stable sort)."""
        out: List[FaultEvent] = []
        for ev in self.events:
            if ev.kind != LINK_FLAP:
                out.append(ev)
                continue
            half = ev.period / 2.0
            for i in range(ev.count):
                start = ev.time + i * ev.period
                out.append(FaultEvent(time=start, kind=LINK_DOWN, target=ev.target))
                out.append(FaultEvent(time=start + half, kind=LINK_UP, target=ev.target))
        out.sort(key=lambda e: e.time)
        return out

    @property
    def horizon(self) -> float:
        """Time of the last primitive event (0.0 for an empty plan)."""
        expanded = self.expanded()
        return expanded[-1].time if expanded else 0.0

    def needs_rng(self) -> bool:
        """True when any event draws randomness at packet time (loss rates)."""
        return any(
            ev.kind in (PACKET_LOSS, PROBE_LOSS) and ev.rate > 0.0
            for ev in self.events
        )

    # -- serialization -----------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or "events" not in data:
            raise FaultError("a fault plan is an object with an 'events' list")
        events = data["events"]
        if not isinstance(events, list):
            raise FaultError("'events' must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in events),
            name=str(data.get("name", "custom")),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "events": [ev.to_dict() for ev in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
