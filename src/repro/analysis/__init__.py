"""Statistics and trace-analysis helpers for experiment analysis."""

from repro.analysis.stats import bootstrap_ci, ecdf, mean, percentile, summarize
from repro.analysis.traces import (
    FlowStats,
    drop_hotspots,
    flow_stats,
    hop_residence_times,
    queue_depth_summary,
    throughput_timeseries,
)

__all__ = [
    "bootstrap_ci",
    "ecdf",
    "mean",
    "percentile",
    "summarize",
    "FlowStats",
    "drop_hotspots",
    "flow_stats",
    "hop_residence_times",
    "queue_depth_summary",
    "throughput_timeseries",
]
