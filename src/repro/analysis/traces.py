"""Analysis of packet traces captured by :class:`~repro.simnet.trace.PacketTracer`.

Turns raw hop events into the quantities a network analyst reads off a
pcap: per-flow throughput over time, per-hop residence times, where drops
cluster, and queue-depth percentiles at a given egress.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simnet.trace import HopEvent

__all__ = [
    "FlowStats",
    "flow_stats",
    "throughput_timeseries",
    "hop_residence_times",
    "drop_hotspots",
    "queue_depth_summary",
]


@dataclass(frozen=True)
class FlowStats:
    """Summary of one flow as observed at a given node."""

    flow_id: int
    packets: int
    bytes: int
    first_seen: float
    last_seen: float

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def throughput_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.bytes * 8.0 / self.duration


def flow_stats(events: Sequence[HopEvent], node: str) -> Dict[int, FlowStats]:
    """Per-flow statistics from one node's ingress events."""
    acc: Dict[int, List[HopEvent]] = defaultdict(list)
    for event in events:
        if event.node == node and event.kind == "ingress":
            acc[event.flow_id].append(event)
    out: Dict[int, FlowStats] = {}
    for flow_id, flow_events in acc.items():
        times = [e.time for e in flow_events]
        out[flow_id] = FlowStats(
            flow_id=flow_id,
            packets=len(flow_events),
            bytes=sum(e.size_bytes for e in flow_events),
            first_seen=min(times),
            last_seen=max(times),
        )
    return out


def throughput_timeseries(
    events: Sequence[HopEvent],
    node: str,
    *,
    bin_width: float = 1.0,
    flow_id: Optional[int] = None,
) -> List[Tuple[float, float]]:
    """(bin start, bits/s) series of traffic arriving at ``node``."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    selected = [
        e for e in events
        if e.node == node and e.kind == "ingress"
        and (flow_id is None or e.flow_id == flow_id)
    ]
    if not selected:
        return []
    start = min(e.time for e in selected)
    bins: Dict[int, int] = defaultdict(int)
    for e in selected:
        bins[int((e.time - start) // bin_width)] += e.size_bytes
    n_bins = max(bins) + 1
    return [
        (start + i * bin_width, bins.get(i, 0) * 8.0 / bin_width)
        for i in range(n_bins)
    ]


def hop_residence_times(events: Sequence[HopEvent]) -> Dict[str, List[float]]:
    """Per-node ingress->egress residence times (queueing + service start),
    keyed by node name.  Only packets with both events at a node count."""
    ingress_at: Dict[Tuple[int, str], float] = {}
    residence: Dict[str, List[float]] = defaultdict(list)
    for event in sorted(events, key=lambda e: e.time):
        key = (event.packet_id, event.node)
        if event.kind == "ingress":
            ingress_at[key] = event.time
        elif event.kind == "egress" and key in ingress_at:
            residence[event.node].append(event.time - ingress_at.pop(key))
    return dict(residence)


def drop_hotspots(events: Sequence[HopEvent]) -> List[Tuple[str, int]]:
    """Nodes ranked by drop count, descending."""
    counts: Dict[str, int] = defaultdict(int)
    for event in events:
        if event.kind == "drop":
            counts[event.node] += 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def queue_depth_summary(
    events: Sequence[HopEvent], node: str
) -> Optional[Dict[str, float]]:
    """Percentiles of the enqueue-time depth observed by packets leaving
    ``node`` — the distribution behind the INT max-register readings."""
    depths = [
        e.enq_depth for e in events
        if e.node == node and e.kind == "egress" and e.enq_depth is not None
    ]
    if not depths:
        return None
    arr = np.asarray(depths, dtype=float)
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
