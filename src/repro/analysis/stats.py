"""Small, dependency-light statistics used by the experiment harnesses.

Everything operates on plain sequences and returns floats/arrays, so the
experiment modules stay free of analysis clutter and the functions are easy
to property-test (ECDF monotonicity, bootstrap coverage, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["mean", "percentile", "ecdf", "bootstrap_ci", "summarize", "Summary"]


def mean(values: Sequence[float]) -> float:
    if len(values) == 0:
        raise ValueError("mean of empty sequence")
    return float(np.mean(np.asarray(values, dtype=float)))


def percentile(values: Sequence[float], q: float) -> float:
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(x, F)`` with x sorted ascending and
    ``F[i] = (i + 1) / n`` — the fraction of samples <= x[i]."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("ecdf of empty sequence")
    frac = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, frac


def ecdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold (one point of the ECDF)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("ecdf_at of empty sequence")
    return float(np.mean(arr <= threshold))


def bootstrap_ci(
    values: Sequence[float],
    *,
    stat: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 1000,
    alpha: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``stat``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("bootstrap of empty sequence")
    if rng is None:
        rng = np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.array([stat(arr[row]) for row in idx])
    lo = float(np.percentile(stats, 100 * alpha / 2))
    hi = float(np.percentile(stats, 100 * (1 - alpha / 2)))
    return lo, hi


@dataclass(frozen=True)
class Summary:
    n: int
    mean: float
    std: float
    p50: float
    p95: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
