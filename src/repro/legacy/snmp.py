"""SNMP-style port-counter polling.

Real deployments poll interface octet counters (IF-MIB ``ifOutOctets``)
over a management network every 10–60 s and derive average utilization per
window.  Two properties matter for the comparison with INT, and both are
modelled:

* **coarse time resolution** — only window-averaged rates, no queue
  occupancy, so a 5-second burst inside a 30-second window dilutes to
  one-sixth of its true intensity;
* **reporting lag** — a counter read reflects the *previous* window.

Polling happens out of band (management networks are physically separate),
so poll traffic does not perturb the data plane; the paper's INT probes, in
contrast, share the data network and pay for it (a cost the overhead
benchmarks quantify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.simnet.engine import PeriodicTimer, Simulator
from repro.simnet.topology import Network

__all__ = ["PortCounterSample", "SnmpPoller", "DEFAULT_POLL_INTERVAL"]

DEFAULT_POLL_INTERVAL = 30.0  # the paper's "typical SNMP monitoring interval"

# Directed link key: (node name, neighbor name) — the egress of `node`
# toward `neighbor`.
PortKey = Tuple[str, str]


@dataclass(frozen=True)
class PortCounterSample:
    """One poll window's result for one directed port."""

    window_start: float
    window_end: float
    bytes_sent: int
    utilization: float  # average over the window, in [0, ...]


class SnmpPoller:
    """Polls every switch egress port's byte counter on a fixed interval."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> None:
        if poll_interval <= 0:
            raise TelemetryError(f"poll interval must be positive, got {poll_interval}")
        self.sim = sim
        self.network = network
        self.poll_interval = poll_interval
        self.polls_completed = 0
        self._last_counters: Dict[PortKey, int] = {}
        self._last_poll_at: float = sim.now
        self._latest: Dict[PortKey, PortCounterSample] = {}
        self._ports = self._discover_ports()
        # Baseline snapshot so the first window measures a full interval.
        for key, port in self._ports.items():
            self._last_counters[key] = self._read_counter(port)
        self._timer = PeriodicTimer(sim, poll_interval, self._poll)

    def _discover_ports(self):
        ports = {}
        for sw_name, switch in self.network.switches.items():
            for port in switch.ports:
                peer_name = port.peer.node.name
                ports[(sw_name, peer_name)] = port
        return ports

    @staticmethod
    def _read_counter(port) -> int:
        link = port.link
        key = "a" if port is link.port_a else "b"
        return link.bytes_carried[key]

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _poll(self) -> None:
        now = self.sim.now
        window = now - self._last_poll_at
        if window <= 0:
            return
        for key, port in self._ports.items():
            counter = self._read_counter(port)
            sent = counter - self._last_counters[key]
            self._last_counters[key] = counter
            rate = sent * 8.0 / window
            self._latest[key] = PortCounterSample(
                window_start=self._last_poll_at,
                window_end=now,
                bytes_sent=sent,
                utilization=rate / port.rate_bps,
            )
        self._last_poll_at = now
        self.polls_completed += 1

    # -- queries -----------------------------------------------------------

    def utilization(self, node: str, toward: str) -> float:
        """Latest window-average utilization of the directed port, 0.0 when
        never polled."""
        sample = self._latest.get((node, toward))
        return sample.utilization if sample is not None else 0.0

    def sample(self, node: str, toward: str) -> Optional[PortCounterSample]:
        return self._latest.get((node, toward))

    def known_ports(self) -> List[PortKey]:
        return sorted(self._ports)
