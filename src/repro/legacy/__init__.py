"""Legacy network monitoring — the alternative the paper argues against.

The paper's motivation (Sections I–II) is that "traditional network
monitoring practices (e.g., port-level and flow-level statistics) ...
reporting frequency in the order of tens of seconds falls short to capture
transient congestion events".  This subpackage implements that tradition so
the claim can be tested rather than assumed:

* :mod:`repro.legacy.snmp` — SNMP-style port-counter polling: periodic
  (default 30 s) snapshots of per-port byte counters, converted into
  average utilization over the poll window;
* :mod:`repro.legacy.scheduler` — a network-aware scheduler driven by those
  counters instead of INT.

The INT-vs-SNMP ablation benchmark pits the two against each other under
dynamic congestion.
"""

from repro.legacy.snmp import PortCounterSample, SnmpPoller
from repro.legacy.scheduler import SnmpScheduler

__all__ = ["PortCounterSample", "SnmpPoller", "SnmpScheduler"]
