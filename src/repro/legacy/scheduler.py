"""A network-aware scheduler driven by SNMP-style counters instead of INT.

Same protocol and the same ranking rules as
:class:`~repro.core.scheduler.NetworkAwareScheduler`, but its view of the
network is the legacy one:

* topology is *static configuration* (legacy NMSes import it), not inferred;
* per-link load is the window-averaged utilization from the poller — stale
  by up to one poll interval and blind to sub-window bursts;
* no queue-occupancy signal exists, so the delay metric can only penalize a
  link proportionally to its average utilization.

Comparing this scheduler against the INT one isolates exactly what the
paper claims high-precision telemetry buys.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.scheduler import METRIC_BANDWIDTH, METRIC_DELAY, SchedulerService
from repro.errors import SchedulingError
from repro.legacy.snmp import SnmpPoller
from repro.simnet.host import Host
from repro.simnet.topology import Network

__all__ = ["SnmpScheduler"]


class SnmpScheduler(SchedulerService):
    """Rank edge servers from port-counter utilization."""

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        network: Network,
        poller: SnmpPoller,
        *,
        # Utilization -> delay penalty: a fully-utilized hop adds this much
        # expected delay (plays the role of INT's k * max_qdepth term).
        full_utilization_penalty: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(host, server_addrs, **kwargs)
        self.network = network
        self.poller = poller
        self.full_utilization_penalty = full_utilization_penalty
        # Static topology knowledge: paths and base delays from the NMS
        # configuration database.
        self._paths: Dict[Tuple[int, int], List[str]] = {}
        names = list(network.hosts)
        for a in names:
            for b in names:
                if a != b:
                    self._paths[
                        (network.address_of(a), network.address_of(b))
                    ] = network.shortest_path(a, b)

    def _path(self, src_addr: int, dst_addr: int) -> List[str]:
        try:
            return self._paths[(src_addr, dst_addr)]
        except KeyError:
            raise SchedulingError(
                f"no configured path between {src_addr} and {dst_addr}"
            ) from None

    def _path_delay(self, path: List[str]) -> float:
        total = 0.0
        g = self.network.graph()
        for u, v in zip(path, path[1:]):
            total += float(g.edges[u, v]["delay"])
            if u in self.network.switches:
                total += self.full_utilization_penalty * self.poller.utilization(u, v)
        return total

    def _path_bandwidth(self, path: List[str]) -> float:
        avail = float("inf")
        g = self.network.graph()
        for u, v in zip(path, path[1:]):
            if u not in self.network.switches:
                continue  # host injection is not the bottleneck
            capacity = self.network.node(u).ports[
                self.network.port_toward(u, v)
            ].rate_bps
            utilization = min(1.0, self.poller.utilization(u, v))
            avail = min(avail, capacity * (1.0 - utilization))
        return avail if avail != float("inf") else 0.0

    def rank(self, requester_addr: int, metric: str) -> List[Tuple[int, float]]:
        candidates = self.candidates_for(requester_addr)
        if metric == METRIC_DELAY:
            scored = [
                (addr, self._path_delay(self._path(requester_addr, addr)))
                for addr in candidates
            ]
            scored.sort(key=lambda item: (item[1], item[0]))
        elif metric == METRIC_BANDWIDTH:
            scored = [
                (addr, self._path_bandwidth(self._path(requester_addr, addr)))
                for addr in candidates
            ]
            scored.sort(key=lambda item: (-item[1], item[0]))
        else:
            raise SchedulingError(f"unknown ranking metric {metric!r}")
        return scored
