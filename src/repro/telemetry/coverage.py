"""Probe route optimization — Section III-A's deferred future work.

"While it is possible that probe packets may not travel all devices
depending on network topology and edge server distribution in the network,
we leave route selection optimization for probe packets as a future work
and assume that the probe packets visit each device at least once."

This module drops the assumption.  Given the physical topology (a
control-plane input, like the routing configuration), it computes which
*directed switch egress ports* a probe between two hosts collects, and
greedily selects a small set of probe (source, destination) pairs whose
union covers every port that matters — classic weighted set cover, solved
with the standard ln(n)-approximation greedy.

Compared to the naive layouts:

* ``star`` (paper): n-1 pairs, partial coverage;
* ``mesh``: n(n-1) pairs, full coverage, maximal overhead;
* ``greedy_probe_cover``: full coverage with close-to-minimal pairs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import TelemetryError
from repro.simnet.topology import Network

__all__ = [
    "DirectedPort",
    "ports_covered_by_pair",
    "all_fabric_ports",
    "coverage_of",
    "greedy_probe_cover",
]

# The egress of `node` toward `neighbor` — the unit of INT visibility.
DirectedPort = Tuple[str, str]


def ports_covered_by_pair(network: Network, src: str, dst: str) -> FrozenSet[DirectedPort]:
    """Directed switch egress ports a probe from ``src`` to ``dst`` collects.

    A probe collects the register of each switch it leaves, for the port it
    leaves through — i.e. every (switch, next-hop) along the routed path."""
    path = network.shortest_path(src, dst)
    covered: Set[DirectedPort] = set()
    for u, v in zip(path, path[1:]):
        if u in network.switches:
            covered.add((u, v))
    return frozenset(covered)


def all_fabric_ports(network: Network) -> Set[DirectedPort]:
    """Every directed switch egress port in the network."""
    ports: Set[DirectedPort] = set()
    for sw_name, switch in network.switches.items():
        for port in switch.ports:
            ports.add((sw_name, port.peer.node.name))
    return ports


def coverage_of(
    network: Network, pairs: Iterable[Tuple[str, str]]
) -> Set[DirectedPort]:
    """Union of ports covered by a set of probe pairs."""
    covered: Set[DirectedPort] = set()
    for src, dst in pairs:
        covered |= ports_covered_by_pair(network, src, dst)
    return covered


def greedy_probe_cover(
    network: Network,
    *,
    sources: Optional[Sequence[str]] = None,
    required: Optional[Set[DirectedPort]] = None,
) -> List[Tuple[str, str]]:
    """Select probe pairs covering ``required`` ports (default: all fabric
    ports reachable by host-to-host probes).

    Greedy set cover: repeatedly pick the pair covering the most still-
    uncovered ports; ties break lexicographically for determinism.  Raises
    :class:`TelemetryError` if some required port is unreachable by any
    host-pair probe (e.g. a port on a link no route uses)."""
    hosts = sorted(sources) if sources is not None else sorted(network.hosts)
    if len(hosts) < 2:
        raise TelemetryError("need at least two probe-capable hosts")

    candidates: Dict[Tuple[str, str], FrozenSet[DirectedPort]] = {}
    for src in hosts:
        for dst in hosts:
            if src != dst:
                candidates[(src, dst)] = ports_covered_by_pair(network, src, dst)

    reachable: Set[DirectedPort] = set()
    for ports in candidates.values():
        reachable |= ports
    if required is None:
        required = set(reachable)
    unreachable = required - reachable
    if unreachable:
        raise TelemetryError(
            f"{len(unreachable)} required ports unreachable by host-pair probes, "
            f"e.g. {sorted(unreachable)[:3]}"
        )

    chosen: List[Tuple[str, str]] = []
    uncovered = set(required)
    # Candidates are scanned in sorted order with a strict-improvement
    # update, so ties break on the lexicographically smallest (src, dst)
    # pair and the selection sequence never depends on dict iteration
    # order — the output is stable across Python versions and platforms.
    ordered = sorted(candidates)
    while uncovered:
        best_pair: Optional[Tuple[str, str]] = None
        best_gain = 0
        for pair in ordered:
            gain = len(candidates[pair] & uncovered)
            if gain > best_gain:
                best_pair, best_gain = pair, gain
        if best_pair is None:  # pragma: no cover - guarded by reachability
            raise TelemetryError("greedy cover stalled")
        chosen.append(best_pair)
        uncovered -= candidates[best_pair]
        ordered.remove(best_pair)
    return chosen
