"""The INT collector running on the scheduler node (Fig. 1, step 2).

Decodes probe payloads into :class:`~repro.telemetry.records.ProbeReport`
objects and fans them out to subscribers — in practice the scheduler core's
:class:`~repro.core.telemetry_store.TelemetryStore`.  Also accepts the
wrapped reports that remote probe responders forward in mesh-probing mode.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import PacketError
from repro.p4.headers import decode_probe_payload
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.host import Host
from repro.simnet.packet import Packet
from repro.telemetry.probe import PORT_PROBE_REPORT
from repro.telemetry.records import ProbeReport

__all__ = ["IntCollector"]

ReportSubscriber = Callable[[ProbeReport], None]


class IntCollector:
    """Probe decoding and distribution at the scheduler."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._subscribers: List[ReportSubscriber] = []
        self.reports_ingested = 0
        self.reports_malformed = 0
        self.probes_lost = 0
        self.last_report: Optional[ProbeReport] = None
        # Per (src, dst) probe stream: (last seq, inferred seq stride).
        # Senders share one seq counter across round-robined targets, so the
        # per-stream stride is len(targets); it is inferred from the first
        # two arrivals and refined downward, making seq-gap loss detection a
        # heuristic (reordering can mask or split gaps) — good enough to
        # surface systematic probe loss on congested paths.
        self._streams: Dict[Tuple[int, int], Tuple[int, Optional[int]]] = {}
        host.bind(PROTO_UDP, PORT_PROBE_REPORT, self._on_wrapped_report)

    def subscribe(self, fn: ReportSubscriber) -> None:
        self._subscribers.append(fn)

    # -- ingestion entry points ---------------------------------------------

    def ingest_probe(
        self,
        *,
        probe_src: int,
        probe_dst: int,
        seq: int,
        sent_at: float,
        received_at: float,
        payload: bytes,
        final_link_latency: Optional[float],
    ) -> Optional[ProbeReport]:
        """Decode one probe payload and publish the report.  Malformed
        payloads are counted and dropped, as a hardened collector would."""
        obs = self.host.sim.obs
        try:
            records = decode_probe_payload(payload)
        except PacketError as exc:
            self.reports_malformed += 1
            if obs:
                obs.probe_malformed(
                    reason="malformed_probe_payload",
                    src=probe_src, dst=probe_dst, seq=seq, error=str(exc),
                )
            return None
        report = ProbeReport(
            probe_src=probe_src,
            probe_dst=probe_dst,
            seq=seq,
            sent_at=sent_at,
            received_at=received_at,
            records=records,
            final_link_latency=final_link_latency,
            collected_at=self.host.sim.now,
        )
        self.reports_ingested += 1
        self.last_report = report
        if obs:
            obs.probe_received(
                src=probe_src, dst=probe_dst, seq=seq, hops=len(records)
            )
            trace = getattr(obs, "trace", None)
            if trace is not None and trace.wants_probe(seq):
                trace.probe_ingested(
                    src=probe_src, dst=probe_dst, seq=seq, hops=len(records)
                )
            telquality = getattr(obs, "telquality", None)
            if telquality is not None:
                telquality.report_ingested(report)
            self._track_loss(obs, probe_src, probe_dst, seq)
        for fn in self._subscribers:
            fn(report)
        return report

    def _track_loss(self, obs, src: int, dst: int, seq: int) -> None:
        """Seq-gap loss heuristic over one (src, dst) probe stream."""
        key = (src, dst)
        prev = self._streams.get(key)
        if prev is None:
            self._streams[key] = (seq, None)
            return
        last, stride = prev
        delta = seq - last
        if delta == 0:  # duplicate delivery: keep the current front
            return
        if delta < 0:
            # A slightly-late arrival (within a few strides of the front) is
            # ordinary reordering: keep the newest front.  Anything further
            # back means the sender restarted or its counter wrapped — reset
            # the stream state instead of waiting for seq to climb past the
            # stale front and then booking the whole climb as "lost" probes.
            tolerance = 3 * stride if stride is not None else 0
            if -delta <= tolerance:
                return
            self._streams[key] = (seq, None)
            return
        if stride is None or delta < stride:
            stride = delta
        elif delta > stride:
            lost = round(delta / stride) - 1
            if lost > 0:
                self.probes_lost += lost
                obs.probe_lost(src=src, dst=dst, seq=seq, lost=lost)
        self._streams[key] = (seq, stride)

    def _on_wrapped_report(self, packet: Packet) -> None:
        """Mesh-mode path: a remote responder forwarded a probe's contents."""
        msg = packet.message
        obs = self.host.sim.obs
        if not (isinstance(msg, tuple) and len(msg) == 7):
            self.reports_malformed += 1
            if obs:
                obs.probe_malformed(
                    reason="malformed_wrapped_report",
                    src=packet.src_addr, seq=packet.seq,
                )
            return
        probe_src, probe_dst, seq, sent_at, received_at, payload, final_latency = msg
        if not isinstance(payload, (bytes, bytearray)):
            self.reports_malformed += 1
            if obs:
                obs.probe_malformed(
                    reason="wrapped_report_payload_not_bytes",
                    src=probe_src, dst=probe_dst, seq=seq,
                )
            return
        self.ingest_probe(
            probe_src=probe_src,
            probe_dst=probe_dst,
            seq=seq,
            sent_at=sent_at,
            received_at=received_at,
            payload=bytes(payload),
            final_link_latency=final_latency,
        )
