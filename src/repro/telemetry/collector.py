"""The INT collector running on the scheduler node (Fig. 1, step 2).

Decodes probe payloads into :class:`~repro.telemetry.records.ProbeReport`
objects and fans them out to subscribers — in practice the scheduler core's
:class:`~repro.core.telemetry_store.TelemetryStore`.  Also accepts the
wrapped reports that remote probe responders forward in mesh-probing mode.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import PacketError, TelemetryError
from repro.p4.headers import decode_probe_payload
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.host import Host
from repro.simnet.packet import Packet
from repro.telemetry.probe import PORT_PROBE_REPORT
from repro.telemetry.records import ProbeReport

__all__ = ["IntCollector"]

ReportSubscriber = Callable[[ProbeReport], None]


class IntCollector:
    """Probe decoding and distribution at the scheduler."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._subscribers: List[ReportSubscriber] = []
        self.reports_ingested = 0
        self.reports_malformed = 0
        self.last_report: Optional[ProbeReport] = None
        host.bind(PROTO_UDP, PORT_PROBE_REPORT, self._on_wrapped_report)

    def subscribe(self, fn: ReportSubscriber) -> None:
        self._subscribers.append(fn)

    # -- ingestion entry points ---------------------------------------------

    def ingest_probe(
        self,
        *,
        probe_src: int,
        probe_dst: int,
        seq: int,
        sent_at: float,
        received_at: float,
        payload: bytes,
        final_link_latency: Optional[float],
    ) -> Optional[ProbeReport]:
        """Decode one probe payload and publish the report.  Malformed
        payloads are counted and dropped, as a hardened collector would."""
        try:
            records = decode_probe_payload(payload)
        except PacketError:
            self.reports_malformed += 1
            return None
        report = ProbeReport(
            probe_src=probe_src,
            probe_dst=probe_dst,
            seq=seq,
            sent_at=sent_at,
            received_at=received_at,
            records=records,
            final_link_latency=final_link_latency,
            collected_at=self.host.sim.now,
        )
        self.reports_ingested += 1
        self.last_report = report
        for fn in self._subscribers:
            fn(report)
        return report

    def _on_wrapped_report(self, packet: Packet) -> None:
        """Mesh-mode path: a remote responder forwarded a probe's contents."""
        msg = packet.message
        if not (isinstance(msg, tuple) and len(msg) == 7):
            self.reports_malformed += 1
            return
        probe_src, probe_dst, seq, sent_at, received_at, payload, final_latency = msg
        if not isinstance(payload, (bytes, bytearray)):
            self.reports_malformed += 1
            return
        self.ingest_probe(
            probe_src=probe_src,
            probe_dst=probe_dst,
            seq=seq,
            sent_at=sent_at,
            received_at=received_at,
            payload=bytes(payload),
            final_link_latency=final_latency,
        )
