"""Telemetry record types shared by the collector and the scheduler core."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.p4.headers import IntHopRecord

__all__ = ["ProbeReport", "TelemetryNodeId", "switch_node", "host_node"]

# Nodes in the *inferred* topology are identified either by INT switch id or
# by edge-node address; a small tagged union keeps the two spaces disjoint.
TelemetryNodeId = Tuple[str, int]


def switch_node(switch_id: int) -> TelemetryNodeId:
    return ("sw", switch_id)


def host_node(addr: int) -> TelemetryNodeId:
    return ("host", addr)


@dataclass
class ProbeReport:
    """One fully-decoded probe: the INT stack plus endpoint measurements.

    ``records`` are in path order.  ``final_link_latency`` is the last-hop
    (last switch -> destination host) latency measured by the receiving
    host's clock against the last switch's egress stamp; ``None`` when the
    probe traversed no switch.
    """

    probe_src: int                     # edge-node address that emitted the probe
    probe_dst: int                     # edge-node address that terminated it
    seq: int
    sent_at: float                     # sender clock at emission
    received_at: float                 # receiver clock at arrival
    records: List[IntHopRecord] = field(default_factory=list)
    final_link_latency: Optional[float] = None
    collected_at: float = 0.0          # scheduler sim-time when ingested

    @property
    def hop_count(self) -> int:
        return len(self.records)

    def path_nodes(self) -> List[TelemetryNodeId]:
        """The inferred path: src host, each switch in stack order, dst host
        (Section III-B's ordering-based topology inference)."""
        nodes: List[TelemetryNodeId] = [host_node(self.probe_src)]
        nodes.extend(switch_node(r.switch_id) for r in self.records)
        nodes.append(host_node(self.probe_dst))
        return nodes

    def link_latencies(self) -> List[Tuple[TelemetryNodeId, TelemetryNodeId, Optional[float]]]:
        """Per-link latency measurements along the path, ``(upstream,
        downstream, latency-or-None)``."""
        nodes = self.path_nodes()
        latencies: List[Optional[float]] = [r.link_latency for r in self.records]
        latencies.append(self.final_link_latency)
        return [
            (nodes[i], nodes[i + 1], latencies[i])
            for i in range(len(nodes) - 1)
        ]

    def port_observations(
        self,
    ) -> List[Tuple[TelemetryNodeId, TelemetryNodeId, int, int]]:
        """Per-switch egress observations along the path.

        Each entry is ``(switch, downstream_neighbor, egress_port,
        max_qdepth)``: record *i* was appended at switch *i*'s egress toward
        the next path element, so its queue-depth reading belongs to the
        directed link switch_i -> next."""
        nodes = self.path_nodes()
        out: List[Tuple[TelemetryNodeId, TelemetryNodeId, int, int]] = []
        for i, rec in enumerate(self.records):
            out.append((nodes[i + 1], nodes[i + 2], rec.egress_port, rec.max_qdepth))
        return out
