"""Probe generation and termination.

:class:`ProbeSender` emits probe packets on a fixed period (paper default:
100 ms) toward one or more targets.  Probes are UDP datagrams flagged with
the probe bit (the paper's Geneve-style marking), carry an empty INT stack,
and are padded to a fixed frame size so the INT metadata appended in flight
does not change the wire footprint (paper: 1.5 KB frames).

:class:`ProbeResponder` terminates probes at any node.  If the node hosts
the collector, the probe is handed over directly; otherwise the responder
wraps the probe's INT stack in a small report datagram and forwards it to
the scheduler (mesh-probing mode).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import TelemetryError
from repro.p4.headers import PROBE_HEADER_SIZE, encode_probe_header
from repro.simnet.addressing import PORT_PROBE, PROTO_UDP
from repro.simnet.engine import PeriodicTimer
from repro.simnet.host import Host
from repro.simnet.packet import FLAG_PROBE, HEADER_OVERHEAD, MTU, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.collector import IntCollector

__all__ = ["ProbeSender", "ProbeResponder", "PORT_PROBE_REPORT", "DEFAULT_PROBE_INTERVAL"]

PORT_PROBE_REPORT = 5002
DEFAULT_PROBE_INTERVAL = 0.1   # seconds (paper Section III-A)
DEFAULT_PROBE_SIZE = MTU       # paper: 1.5 KB probe frames


class ProbeSender:
    """Periodic probe source attached to one host."""

    def __init__(
        self,
        host: Host,
        targets: Sequence[int],
        *,
        interval: float = DEFAULT_PROBE_INTERVAL,
        probe_size: int = DEFAULT_PROBE_SIZE,
    ) -> None:
        if not targets:
            raise TelemetryError(f"probe sender on {host.name} needs at least one target")
        if interval <= 0:
            raise TelemetryError(f"probe interval must be positive, got {interval}")
        min_size = HEADER_OVERHEAD + PROBE_HEADER_SIZE
        if probe_size < min_size:
            raise TelemetryError(
                f"probe size {probe_size} too small; need >= {min_size} bytes"
            )
        self.host = host
        self.targets = [t for t in targets if t != host.addr]
        self.interval = interval
        self.probe_size = probe_size
        self.probes_sent = 0
        self._seq = 0
        self._target_index = 0
        self._src_port = host.ephemeral_port()
        # Each target is probed once per interval, but emission is spread
        # round-robin across the interval and phase-shifted per host:
        # synchronized probe bursts would queue behind each other at shared
        # egress ports and read as phantom congestion.
        phase = (host.addr * 0.618034) % 1.0
        self._timer = PeriodicTimer(
            host.sim,
            self._tick_period(),
            self._tick,
            start_delay=self._tick_period() * (0.05 + 0.9 * phase),
        )

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _tick_period(self) -> float:
        return self.interval / max(1, len(self.targets))

    def set_interval(self, interval: float) -> None:
        """Retune the probing period (adaptive-probing control plane).  The
        new period takes effect from the next firing."""
        if interval <= 0:
            raise TelemetryError(f"probe interval must be positive, got {interval}")
        self.interval = interval
        self._timer.period = self._tick_period()

    @property
    def overhead_bps(self) -> float:
        """Offered probe load of this sender (paper: 120 Kbps per node)."""
        return len(self.targets) * self.probe_size * 8.0 / self.interval

    def _tick(self) -> None:
        target = self.targets[self._target_index % len(self.targets)]
        self._target_index += 1
        self._send_probe(target)

    def _send_probe(self, target: int) -> None:
        self._seq += 1
        packet = self.host.new_packet(
            target,
            protocol=PROTO_UDP,
            src_port=self._src_port,
            dst_port=PORT_PROBE,
            size_bytes=self.probe_size,
            payload=encode_probe_header(0),
            flags=FLAG_PROBE,
            seq=self._seq,
            message=self.host.clock.read(),  # sender clock, for the report
        )
        # Keep the declared frame size fixed (padding); set_payload would
        # shrink it to the actual INT stack length.
        packet.size_bytes = self.probe_size
        self.probes_sent += 1
        obs = self.host.sim.obs
        if obs:
            obs.probe_sent(src=self.host.addr, dst=target, seq=self._seq)
            trace = getattr(obs, "trace", None)
            if trace is not None and trace.wants_probe(self._seq):
                trace.probe_sent(
                    src=self.host.addr,
                    dst=target,
                    seq=self._seq,
                    packet_id=packet.packet_id,
                )
        self.host.send(packet)


class ProbeResponder:
    """Terminates probes arriving at a host.

    With a local collector (the scheduler node), hands the probe over
    directly.  Otherwise forwards a compact report to ``collector_addr`` —
    the mesh-mode path.  Report packets are regular (non-probe) UDP traffic.
    """

    def __init__(
        self,
        host: Host,
        *,
        collector: Optional["IntCollector"] = None,
        collector_addr: Optional[int] = None,
    ) -> None:
        if collector is None and collector_addr is None:
            raise TelemetryError(
                f"probe responder on {host.name} needs a collector or a collector address"
            )
        self.host = host
        self.collector = collector
        self.collector_addr = collector_addr
        self.probes_terminated = 0
        self.reports_forwarded = 0
        host.bind(PROTO_UDP, PORT_PROBE, self._on_probe)

    def _on_probe(self, packet: Packet) -> None:
        if not packet.is_probe or packet.payload is None:
            return
        self.probes_terminated += 1
        received_at = self.host.clock.read()
        final_link_latency: Optional[float] = None
        if packet.last_egress_ts is not None:
            final_link_latency = received_at - packet.last_egress_ts

        if self.collector is not None:
            self.collector.ingest_probe(
                probe_src=packet.src_addr,
                probe_dst=self.host.addr,
                seq=packet.seq,
                sent_at=packet.message if isinstance(packet.message, float) else 0.0,
                received_at=received_at,
                payload=packet.payload,
                final_link_latency=final_link_latency,
            )
            return

        assert self.collector_addr is not None
        report = self.host.new_packet(
            self.collector_addr,
            protocol=PROTO_UDP,
            src_port=self.host.ephemeral_port(),
            dst_port=PORT_PROBE_REPORT,
            size_bytes=HEADER_OVERHEAD + len(packet.payload) + 24,
            message=(
                packet.src_addr,
                self.host.addr,
                packet.seq,
                packet.message if isinstance(packet.message, float) else 0.0,
                received_at,
                packet.payload,
                final_link_latency,
            ),
        )
        self.reports_forwarded += 1
        self.host.send(report)
