"""Adaptive probing — congestion-sensitive probe-rate control.

Fig. 9 shows the tension the paper leaves open: fast probing (100 ms)
detects congestion promptly but costs constant overhead; slow probing is
cheap but stale.  Related work (selective INT, Kim et al.; event detection,
Vestin et al.) resolves it by making telemetry rate follow network state.

:class:`AdaptiveProbingController` runs next to the scheduler's collector:

* every report is inspected; a max-queue reading at or above
  ``congestion_threshold`` marks the network "active";
* periodically, the controller picks the fast interval if anything was
  active within ``cooldown`` seconds, the slow interval otherwise;
* on a change it sends a rate-control datagram to every probe sender, whose
  :class:`ProbeRateListener` retunes the local sender.

The probing-overhead ablation benchmark quantifies the trade-off against
fixed-fast and fixed-slow probing.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TelemetryError
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.engine import PeriodicTimer
from repro.simnet.host import Host
from repro.simnet.packet import HEADER_OVERHEAD, Packet
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import ProbeSender
from repro.telemetry.records import ProbeReport

__all__ = ["AdaptiveProbingController", "ProbeRateListener", "PORT_PROBE_CTRL"]

PORT_PROBE_CTRL = 5004

DEFAULT_FAST_INTERVAL = 0.1   # the paper's default probing period
DEFAULT_SLOW_INTERVAL = 1.0   # idle-network period (10x cheaper)
# Queue depth that counts as congestion.  The controller's trigger is
# binary, so it uses the stricter bound from Fig. 3 (queues below ~5
# packets occur on links under 50 % utilization): a lower threshold keeps
# the fleet probing fast forever on phantom one-off collisions between
# probes/reports themselves.
DEFAULT_THRESHOLD = 5
DEFAULT_COOLDOWN = 2.0        # seconds of quiet before slowing down


class AdaptiveProbingController:
    """Scheduler-side probe-rate governor."""

    def __init__(
        self,
        host: Host,
        collector: IntCollector,
        sender_addrs: Sequence[int],
        *,
        fast_interval: float = DEFAULT_FAST_INTERVAL,
        slow_interval: float = DEFAULT_SLOW_INTERVAL,
        congestion_threshold: int = DEFAULT_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        decision_period: float = 0.5,
    ) -> None:
        if fast_interval <= 0 or slow_interval <= 0:
            raise TelemetryError("probe intervals must be positive")
        if fast_interval > slow_interval:
            raise TelemetryError("fast interval must be <= slow interval")
        self.host = host
        self.sender_addrs = list(sender_addrs)
        self.fast_interval = fast_interval
        self.slow_interval = slow_interval
        self.congestion_threshold = congestion_threshold
        self.cooldown = cooldown
        self.current_interval = fast_interval
        self.rate_changes = 0
        self._last_congestion_at = -float("inf")
        collector.subscribe(self._on_report)
        self._timer = PeriodicTimer(host.sim, decision_period, self._decide)
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # -- inputs -------------------------------------------------------------

    def _on_report(self, report: ProbeReport) -> None:
        for _sw, _down, _port, qdepth in report.port_observations():
            if qdepth >= self.congestion_threshold:
                self._last_congestion_at = self.host.sim.now
                return

    # -- control ------------------------------------------------------------

    def _decide(self) -> None:
        congested_recently = (
            self.host.sim.now - self._last_congestion_at <= self.cooldown
        )
        desired = self.fast_interval if congested_recently else self.slow_interval
        if desired != self.current_interval:
            self.current_interval = desired
            self.rate_changes += 1
            self._broadcast(desired)

    def _broadcast(self, interval: float) -> None:
        # Pace the fan-out: a back-to-back burst of control datagrams would
        # itself queue at the scheduler's uplink and read as congestion —
        # a self-triggering control loop.
        for i, addr in enumerate(self.sender_addrs):
            self.host.sim.schedule(i * 0.01, self._send_control, addr, interval)

    def _send_control(self, addr: int, interval: float) -> None:
        packet = self.host.new_packet(
            addr,
            protocol=PROTO_UDP,
            src_port=PORT_PROBE_CTRL,
            dst_port=PORT_PROBE_CTRL,
            size_bytes=HEADER_OVERHEAD + 8,
            message=("probe_rate", interval),
        )
        self.host.send(packet)


class ProbeRateListener:
    """Node-side receiver applying rate-control messages to a local sender."""

    def __init__(self, host: Host, sender: ProbeSender) -> None:
        self.host = host
        self.sender = sender
        self.rate_updates = 0
        host.bind(PROTO_UDP, PORT_PROBE_CTRL, self._on_control)

    def _on_control(self, packet: Packet) -> None:
        msg = packet.message
        if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "probe_rate"):
            return
        interval = float(msg[1])
        if interval <= 0:
            return
        if interval != self.sender.interval:
            self.sender.set_interval(interval)
            self.rate_updates += 1
