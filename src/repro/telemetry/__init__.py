"""INT collection framework: probe generation and report collection.

Implements the paper's Section III-A collection scheme: telemetry lives in
switch registers, and periodic probe packets (default every 100 ms) pick the
registers up and reset them.  Two probing layouts are supported:

* ``star`` — every node probes the scheduler, exactly the paper's setup
  (Fig. 1, step 1).  Coverage is limited to the directions of node→scheduler
  paths; the paper explicitly assumes these cover every device and leaves
  probe route optimization as future work.
* ``mesh`` — every node probes every other node; receiving nodes forward the
  collected INT stack to the scheduler in a small report packet.  A probe
  from *i* to *j* traverses exactly the route task data from *i* to *j*
  takes, so mesh probing guarantees the coverage the paper assumes.  The
  coverage ablation benchmark compares the two.
"""

from repro.telemetry.adaptive import AdaptiveProbingController, ProbeRateListener
from repro.telemetry.collector import IntCollector
from repro.telemetry.coverage import greedy_probe_cover
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.telemetry.records import ProbeReport

__all__ = [
    "AdaptiveProbingController",
    "ProbeRateListener",
    "IntCollector",
    "greedy_probe_cover",
    "ProbeResponder",
    "ProbeSender",
    "ProbeReport",
]
